(** The differential conformance engine: generates seeded traces, runs
    each against the reference model and every applicable representation
    on a real machine, cross-checks the position-independent
    representations pairwise after each remap, and minimizes any
    divergence to a replayable s-expression.

    Applicability follows {!Core.Repr.remap_safety}: traces containing a
    remap run every representation except the normal (absolute) pointer,
    whose slots would dangle by design; remap-free traces run all nine.
    Counters ([conform.traces], [conform.ops], [conform.divergences],
    [conform.shrink_steps]) land in the registry passed by the driver —
    engine-side observation only, never the machines under test. *)

module Repr = Core.Repr
module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Pool = Nvmpi_parsweep.Pool

let caps_of kind = { Model.cross_region = Repr.cross_region kind }

let applicable tr =
  if Trace.has_remap tr then
    List.filter (fun k -> k <> Repr.Normal) Repr.all
  else Repr.all

(* The pairwise groups: representations in one group share caps, so
   their whole observable streams — snapshots included — must agree
   with each other regardless of what the model says. *)
let pairwise_groups =
  [
    [ Repr.Riv; Repr.Fat; Repr.Fat_cached; Repr.Swizzle; Repr.Packed_fat;
      Repr.Hw_oid ];
    [ Repr.Off_holder; Repr.Based ];
  ]

type failure = {
  f_trace : int;  (** trace index under the engine seed; -1 = replay *)
  f_kind : [ `Model | `Pairwise ];
  f_reprs : Repr.kind list;
  f_detail : string;
  f_shrunk : Trace.t;
}

type report = {
  seed : int;
  traces : int;
  failures : failure list;
  repr_traces : (string * int) list;  (** traces executed per repr *)
  traces_with_remap : int;
  counters : (string * int) list;
}

(* First point where the machine's observables diverge from the model's. *)
let compare_to_model (tr : Trace.t) kind (res : Exec.result) =
  match res.Exec.fatal with
  | Some e -> Some (Printf.sprintf "world setup crashed: %s" e)
  | None ->
      let model = Model.run ~caps:(caps_of kind) ~payload:Exec.payload tr in
      let ops = Array.of_list tr.ops in
      let rec scan i =
        if i >= Array.length model then None
        else
          match res.Exec.obs.(i) with
          | Exec.Good o when o = model.(i) -> scan (i + 1)
          | machine_obs ->
              Some
                (Printf.sprintf "op %d %s: model %s, machine %s" i
                   (Sexp.to_string (Trace.sexp_of_op ops.(i)))
                   (Model.obs_to_string model.(i))
                   (Exec.obs_to_string machine_obs))
      in
      scan 0

let diverges tr kind res = compare_to_model tr kind res <> None

(* Pairwise check over one group's results: every executed repr in the
   group must produce identical observables and identical post-remap
   snapshots. Returns the first disagreeing pair. *)
let compare_pairwise results group =
  let in_group =
    List.filter (fun (k, _) -> List.mem k group) results
  in
  let canon (res : Exec.result) =
    String.concat "|"
      (Array.to_list (Array.map Exec.obs_to_string res.Exec.obs)
      @ List.map (fun (i, s) -> Printf.sprintf "@%d:%s" i s) res.Exec.snaps)
  in
  match in_group with
  | [] | [ _ ] -> None
  | (k0, r0) :: rest ->
      let c0 = canon r0 in
      List.find_map
        (fun (k, r) ->
          let c = canon r in
          if String.equal c c0 then None
          else
            Some
              ( [ k0; k ],
                Printf.sprintf "%s and %s disagree: [%s] vs [%s]"
                  (Repr.to_string k0) (Repr.to_string k) c0 c ))
        rest

let run_exec ?obs_metrics kind tr =
  Exec.run ?obs_metrics ~kind tr

(** Checks one trace against the oracle and pairwise; failures carry
    already-shrunk traces. Exposed for tests and [--replay]. *)
let check_trace ?metrics ~index (tr : Trace.t) : failure list =
  (match metrics with
  | Some m -> Metrics.incr m "conform.traces"
  | None -> ());
  let reprs = applicable tr in
  let results =
    List.map (fun k -> (k, run_exec ?obs_metrics:metrics k tr)) reprs
  in
  let model_failures =
    List.filter_map
      (fun (k, res) ->
        match compare_to_model tr k res with
        | None -> None
        | Some detail ->
            let shrunk =
              Shrink.minimize ?metrics
                ~still_fails:(fun cand ->
                  diverges cand k (run_exec ?obs_metrics:metrics k cand))
                tr
            in
            Some
              {
                f_trace = index;
                f_kind = `Model;
                f_reprs = [ k ];
                f_detail = detail;
                f_shrunk = shrunk;
              })
      results
  in
  let pairwise_failures =
    (* Only meaningful when the model agrees with everyone: a model
       divergence already reports the offender more precisely. *)
    if model_failures <> [] then []
    else
      List.filter_map
        (fun group ->
          match compare_pairwise results group with
          | None -> None
          | Some (ks, detail) ->
              let shrunk =
                Shrink.minimize ?metrics
                  ~still_fails:(fun cand ->
                    let rs =
                      List.map (fun k -> (k, run_exec k cand)) (applicable cand)
                    in
                    compare_pairwise rs group <> None)
                  tr
              in
              Some
                {
                  f_trace = index;
                  f_kind = `Pairwise;
                  f_reprs = ks;
                  f_detail = detail;
                  f_shrunk = shrunk;
                })
        pairwise_groups
  in
  let failures = model_failures @ pairwise_failures in
  (match metrics with
  | Some m when failures <> [] ->
      Metrics.incr ~by:(List.length failures) m "conform.divergences"
  | _ -> ());
  failures

let run ?(jobs = 1) ?metrics ~seed ~traces () : report =
  let indices = List.init traces (fun i -> i) in
  let chunks = Pool.chunks ~jobs indices in
  (* One private registry per chunk, merged in input order afterwards:
     the parsweep determinism contract. *)
  let tasks =
    List.map
      (fun chunk () ->
        let priv = Metrics.create () in
        List.iter
          (fun n -> ignore (Metrics.counter priv n))
          [ "conform.traces"; "conform.ops"; "conform.divergences";
            "conform.shrink_steps" ];
        let out =
          List.map
            (fun i ->
              let tr = Gen.trace ~seed ~index:i () in
              let fails = check_trace ~metrics:priv ~index:i tr in
              (tr, fails))
            chunk
        in
        (out, Metrics.snapshot priv))
      chunks
  in
  let results = Pool.map ~jobs tasks in
  let per_trace = List.concat_map fst results in
  (match metrics with
  | Some m ->
      List.iter
        (fun (_, snap) ->
          List.iter (fun (n, v) -> Metrics.incr ~by:v m n) snap)
        results
  | None -> ());
  let failures = List.concat_map snd per_trace in
  let repr_traces =
    List.map
      (fun k ->
        ( Repr.to_string k,
          List.length
            (List.filter (fun (tr, _) -> List.mem k (applicable tr)) per_trace)
        ))
      Repr.all
  in
  let traces_with_remap =
    List.length (List.filter (fun (tr, _) -> Trace.has_remap tr) per_trace)
  in
  let counters =
    List.concat_map
      (fun (_, snap) ->
        List.filter (fun (n, _) -> String.length n >= 8
                                   && String.sub n 0 8 = "conform.") snap)
      results
    |> List.fold_left
         (fun acc (n, v) ->
           let cur = try List.assoc n acc with Not_found -> 0 in
           (n, cur + v) :: List.remove_assoc n acc)
         []
    |> List.sort compare
  in
  { seed; traces; failures; repr_traces; traces_with_remap; counters }

(** {1 Rendering} *)

let failure_to_json f =
  Json.Obj
    [
      ("trace", Json.Int f.f_trace);
      ( "kind",
        Json.String (match f.f_kind with `Model -> "model" | `Pairwise -> "pairwise")
      );
      ("reprs", Json.List (List.map (fun k -> Json.String (Repr.to_string k)) f.f_reprs));
      ("detail", Json.String f.f_detail);
      ("shrunk_ops", Json.Int (List.length f.f_shrunk.Trace.ops));
      ("repro", Json.String (Trace.to_string f.f_shrunk));
    ]

let report_to_json r =
  Json.Obj
    [
      ("kind", Json.String "conform");
      ("schema_version", Json.Int 1);
      ("seed", Json.Int r.seed);
      ("traces", Json.Int r.traces);
      ("traces_with_remap", Json.Int r.traces_with_remap);
      ( "repr_traces",
        Json.Obj (List.map (fun (n, c) -> (n, Json.Int c)) r.repr_traces) );
      ("failures", Json.List (List.map failure_to_json r.failures));
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) r.counters) );
    ]
