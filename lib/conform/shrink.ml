(** Greedy delta-debugging minimizer for failing traces.

    Repeatedly tries to delete contiguous windows of ops (halving the
    window size down to single ops), keeping any deletion under which
    the trace {e still fails} the caller's predicate, then trims the
    world dimensions (slots/objects/structures) down to what the
    surviving ops mention. Deterministic: same trace and predicate, same
    minimum. Every candidate execution is one [conform.shrink_steps]. *)

module Metrics = Nvmpi_obs.Metrics

let drop_window l lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) l

(* One sweep at window size [size]; returns the reduced trace. *)
let sweep ~attempt (tr : Trace.t) size =
  let rec go lo tr =
    let n = List.length tr.Trace.ops in
    if lo >= n then tr
    else begin
      let len = min size (n - lo) in
      let cand = { tr with Trace.ops = drop_window tr.Trace.ops lo len } in
      if attempt cand then go lo cand (* window gone; same lo is new ops *)
      else go (lo + 1) tr
    end
  in
  go 0 tr

let trim_world ~attempt (tr : Trace.t) =
  let used_structs =
    List.filter
      (fun s ->
        List.exists
          (function
            | Trace.Ins (s', _) | Trace.Del (s', _) | Trace.Mem (s', _) ->
                s = s'
            | Trace.Dig s' -> s = s'
            | _ -> false)
          tr.ops)
      tr.structures
  in
  let max_over f d = List.fold_left (fun a op -> max a (f op)) d tr.ops in
  let slots =
    1
    + max_over
        (function
          | Trace.Pstore (sl, _) | Trace.Pload sl -> sl | _ -> -1)
        (-1)
  in
  let objs_used =
    max_over (function Trace.Pstore (_, Some o) -> o | _ -> -1) (-1)
  in
  let cand =
    {
      tr with
      Trace.structures = used_structs;
      slots = max 1 slots;
      objs0 = max 1 (min tr.objs0 (objs_used + 1));
      objs1 = max 0 (min tr.objs1 (objs_used + 1 - tr.objs0));
    }
  in
  (* Object indices are positional ((region, offset) identities), so
     objs0 cannot shrink without renumbering; only take the trimmed
     world if the failure survives it verbatim. *)
  if cand <> tr && attempt cand then cand else tr

let minimize ?metrics ~still_fails (tr : Trace.t) =
  let attempt cand =
    (match metrics with
    | Some m -> Metrics.incr m "conform.shrink_steps"
    | None -> ());
    Trace.valid cand && still_fails cand
  in
  let rec fixpoint tr =
    let n = List.length tr.Trace.ops in
    let rec sizes tr size =
      if size < 1 then tr
      else begin
        let tr' = sweep ~attempt tr size in
        sizes tr' (if size = 1 then 0 else max 1 (size / 2))
      end
    in
    let tr' = sizes tr (max 1 (n / 2)) in
    if List.length tr'.Trace.ops < n then fixpoint tr' else tr'
  in
  let tr = fixpoint tr in
  trim_world ~attempt tr
