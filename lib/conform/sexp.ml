(** A deliberately tiny s-expression codec for conformance traces: atoms
    are bare tokens (no quoting — trace grammar atoms are all
    [[a-z0-9-]]), lists are parenthesized. Small enough to audit, which
    matters for the thing that prints failure repros. *)

type t = Atom of string | List of t list

let rec add_to b = function
  | Atom s -> Buffer.add_string b s
  | List l ->
      Buffer.add_char b '(';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ' ';
          add_to b x)
        l;
      Buffer.add_char b ')'

let to_string t =
  let b = Buffer.create 256 in
  add_to b t;
  Buffer.contents b

let is_space c = c = ' ' || c = '\n' || c = '\t' || c = '\r'

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let skip () = while !pos < n && is_space s.[!pos] do incr pos done in
  let rec parse () =
    skip ();
    if !pos >= n then Error "unexpected end of input"
    else if s.[!pos] = '(' then begin
      incr pos;
      let rec items acc =
        skip ();
        if !pos >= n then Error "unterminated list"
        else if s.[!pos] = ')' then begin
          incr pos;
          Ok (List (List.rev acc))
        end
        else
          match parse () with
          | Ok x -> items (x :: acc)
          | Error _ as e -> e
      in
      items []
    end
    else if s.[!pos] = ')' then Error (Printf.sprintf "stray ')' at %d" !pos)
    else begin
      let start = !pos in
      while !pos < n && (not (is_space s.[!pos])) && s.[!pos] <> '('
            && s.[!pos] <> ')' do
        incr pos
      done;
      Ok (Atom (String.sub s start (!pos - start)))
    end
  in
  match parse () with
  | Error _ as e -> e
  | Ok x ->
      skip ();
      if !pos <> n then Error (Printf.sprintf "trailing input at %d" !pos)
      else Ok x
