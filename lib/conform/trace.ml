(** Conformance traces: the adversarial programs both the reference
    model and the real machine execute (grammar in docs/CONFORM.md).

    A trace operates on a fixed small world set up before the first op:
    two regions; [objs0]/[objs1] anonymous 32-byte objects (the pointer
    targets) at repr-independent offsets; [slots] pointer slots in
    region 0 (the "playground" the [Pstore]/[Pload] ops drive through
    {!Core.Repr_sig.S}); and up to four persistent structures, all
    anchored in region 0. Objects are named by a flat index: [o <
    objs0] lives in region 0, the rest in region 1 — which is what
    makes a [Pstore] cross-region or not. *)

type structure = Slist | Sbtree | Shash | Strie

let all_structures = [ Slist; Sbtree; Shash; Strie ]

let structure_name = function
  | Slist -> "list"
  | Sbtree -> "btree"
  | Shash -> "hash"
  | Strie -> "trie"

let structure_of_name = function
  | "list" -> Some Slist
  | "btree" -> Some Sbtree
  | "hash" -> Some Shash
  | "trie" -> Some Strie
  | _ -> None

(* Injective key-to-word encoding for the trie (little-endian base 26),
   shared verbatim by the model and the machine executor. *)
let word_of_key k =
  let k = abs k in
  let b = Buffer.create 4 in
  let rec go k =
    Buffer.add_char b (Char.chr (Char.code 'a' + (k mod 26)));
    if k >= 26 then go (k / 26)
  in
  go k;
  Buffer.contents b

type op =
  | Remap of int  (** region index 0/1: close + reopen at a fresh base *)
  | Pstore of int * int option  (** slot, target object (None = null) *)
  | Pload of int  (** slot: decode and observe the target *)
  | Ins of structure * int
  | Del of structure * int  (** list, hash and btree *)
  | Mem of structure * int
  | Dig of structure  (** full-walk digest *)
  | Sync
      (** snapshot-epoch boundary: [Nvmpi_snapshot.Snapshot.sync] on
          both regions (docs/SNAPSHOT.md). Durability only — no
          observable may change. *)

type t = {
  mseed : int;  (** machine placement seed — part of the repro *)
  slots : int;
  objs0 : int;
  objs1 : int;
  structures : structure list;
  ops : op list;
}

let has_remap t = List.exists (function Remap _ -> true | _ -> false) t.ops

(** {1 S-expression round-trip} *)

let sexp_of_op op =
  let open Sexp in
  let i n = Atom (string_of_int n) in
  let s st = Atom (structure_name st) in
  match op with
  | Remap r -> List [ Atom "remap"; i r ]
  | Pstore (sl, Some o) -> List [ Atom "pstore"; i sl; List [ Atom "obj"; i o ] ]
  | Pstore (sl, None) -> List [ Atom "pstore"; i sl; Atom "null" ]
  | Pload sl -> List [ Atom "pload"; i sl ]
  | Ins (st, k) -> List [ Atom "ins"; s st; i k ]
  | Del (st, k) -> List [ Atom "del"; s st; i k ]
  | Mem (st, k) -> List [ Atom "mem"; s st; i k ]
  | Dig st -> List [ Atom "dig"; s st ]
  | Sync -> Atom "sync"

let to_sexp t =
  let open Sexp in
  let i n = Atom (string_of_int n) in
  List
    [
      Atom "trace";
      List [ Atom "mseed"; i t.mseed ];
      List [ Atom "slots"; i t.slots ];
      List [ Atom "objs"; i t.objs0; i t.objs1 ];
      List (Atom "structures" :: List.map (fun s -> Atom (structure_name s)) t.structures);
      List (Atom "ops" :: List.map sexp_of_op t.ops);
    ]

let to_string t = Sexp.to_string (to_sexp t)

let int_of_atom = function
  | Sexp.Atom a -> (try Ok (int_of_string a) with _ -> Error ("not an int: " ^ a))
  | Sexp.List _ -> Error "expected int atom"

let structure_of_atom = function
  | Sexp.Atom a -> (
      match structure_of_name a with
      | Some s -> Ok s
      | None -> Error ("unknown structure: " ^ a))
  | Sexp.List _ -> Error "expected structure atom"

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let op_of_sexp = function
  | Sexp.List [ Sexp.Atom "remap"; r ] ->
      let* r = int_of_atom r in
      Ok (Remap r)
  | Sexp.List [ Sexp.Atom "pstore"; sl; Sexp.List [ Sexp.Atom "obj"; o ] ] ->
      let* sl = int_of_atom sl in
      let* o = int_of_atom o in
      Ok (Pstore (sl, Some o))
  | Sexp.List [ Sexp.Atom "pstore"; sl; Sexp.Atom "null" ] ->
      let* sl = int_of_atom sl in
      Ok (Pstore (sl, None))
  | Sexp.List [ Sexp.Atom "pload"; sl ] ->
      let* sl = int_of_atom sl in
      Ok (Pload sl)
  | Sexp.List [ Sexp.Atom "ins"; st; k ] ->
      let* st = structure_of_atom st in
      let* k = int_of_atom k in
      Ok (Ins (st, k))
  | Sexp.List [ Sexp.Atom "del"; st; k ] ->
      let* st = structure_of_atom st in
      let* k = int_of_atom k in
      Ok (Del (st, k))
  | Sexp.List [ Sexp.Atom "mem"; st; k ] ->
      let* st = structure_of_atom st in
      let* k = int_of_atom k in
      Ok (Mem (st, k))
  | Sexp.List [ Sexp.Atom "dig"; st ] ->
      let* st = structure_of_atom st in
      Ok (Dig st)
  | Sexp.Atom "sync" -> Ok Sync
  | x -> Error ("unrecognized op: " ^ Sexp.to_string x)

let rec ops_of_sexps = function
  | [] -> Ok []
  | x :: rest ->
      let* op = op_of_sexp x in
      let* ops = ops_of_sexps rest in
      Ok (op :: ops)

let rec structures_of_sexps = function
  | [] -> Ok []
  | x :: rest ->
      let* s = structure_of_atom x in
      let* ss = structures_of_sexps rest in
      Ok (s :: ss)

let of_sexp = function
  | Sexp.List
      [
        Sexp.Atom "trace";
        Sexp.List [ Sexp.Atom "mseed"; mseed ];
        Sexp.List [ Sexp.Atom "slots"; slots ];
        Sexp.List [ Sexp.Atom "objs"; o0; o1 ];
        Sexp.List (Sexp.Atom "structures" :: ss);
        Sexp.List (Sexp.Atom "ops" :: ops);
      ] ->
      let* mseed = int_of_atom mseed in
      let* slots = int_of_atom slots in
      let* objs0 = int_of_atom o0 in
      let* objs1 = int_of_atom o1 in
      let* structures = structures_of_sexps ss in
      let* ops = ops_of_sexps ops in
      Ok { mseed; slots; objs0; objs1; structures; ops }
  | x -> Error ("not a trace: " ^ Sexp.to_string x)

let of_string s =
  let* x = Sexp.of_string s in
  of_sexp x

(** Structural well-formedness: every index an op mentions exists and
    every structure op names a declared structure (with [Del] confined
    to the structures that support removal). *)
let valid t =
  t.slots > 0 && t.objs0 > 0 && t.objs1 >= 0
  && List.for_all
       (fun op ->
         match op with
         | Remap r -> r = 0 || r = 1
         | Pstore (sl, o) ->
             sl >= 0 && sl < t.slots
             && (match o with
                | None -> true
                | Some o -> o >= 0 && o < t.objs0 + t.objs1)
         | Pload sl -> sl >= 0 && sl < t.slots
         | Sync -> true
         | Del (st, _) ->
             (st = Slist || st = Shash || st = Sbtree)
             && List.mem st t.structures
         | Ins (st, _) | Mem (st, _) | Dig st -> List.mem st t.structures)
       t.ops
