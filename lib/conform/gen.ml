(** Seeded random trace generation.

    Everything is derived from an explicit [Random.State.t] so the
    driver is replayable: [trace ~seed ~index] is a pure function, and
    QCheck properties reuse {!trace_rand} through a state they control.

    Roughly a quarter of traces carry no remap (those also exercise the
    normal-pointer baseline); every other trace is guaranteed at least
    one remap, which is the acceptance bar for the position-independent
    representations. *)

let pick st l = List.nth l (Random.State.int st (List.length l))

(* Generate one op against the world's dimensions. *)
let gen_op st ~with_remap ~slots ~nobjs ~structures ~deletable =
  let has_structs = structures <> [] in
  let weighted =
    [
      (5, `Pstore); (5, `Pload);
      ((if with_remap then 2 else 0), `Remap);
      ((if has_structs then 3 else 0), `Ins);
      ((if deletable <> [] then 2 else 0), `Del);
      ((if has_structs then 3 else 0), `Mem);
      ((if has_structs then 2 else 0), `Dig);
      (2, `Sync);
    ]
  in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 weighted in
  let rec choose n = function
    | (w, x) :: rest -> if n < w then x else choose (n - w) rest
    | [] -> assert false
  in
  let key () = Random.State.int st 50 in
  match choose (Random.State.int st total) weighted with
  | `Remap -> Trace.Remap (Random.State.int st 2)
  | `Pstore ->
      let target =
        if Random.State.int st 5 = 0 then None
        else Some (Random.State.int st nobjs)
      in
      Trace.Pstore (Random.State.int st slots, target)
  | `Pload -> Trace.Pload (Random.State.int st slots)
  | `Ins -> Trace.Ins (pick st structures, key ())
  | `Del -> Trace.Del (pick st deletable, key ())
  | `Mem -> Trace.Mem (pick st structures, key ())
  | `Dig -> Trace.Dig (pick st structures)
  | `Sync -> Trace.Sync

let trace_rand ?(structures = true) st =
  let mseed = Random.State.bits st in
  let slots = 1 + Random.State.int st 4 in
  let objs0 = 1 + Random.State.int st 4 in
  let objs1 = 1 + Random.State.int st 4 in
  let structures =
    if not structures then []
    else List.filter (fun _ -> Random.State.bool st) Trace.all_structures
  in
  let deletable =
    List.filter
      (fun s -> s = Trace.Slist || s = Trace.Shash || s = Trace.Sbtree)
      structures
  in
  let with_remap = Random.State.int st 4 > 0 in
  let nops = 5 + Random.State.int st 30 in
  let ops =
    List.init nops (fun _ ->
        gen_op st ~with_remap ~slots ~nobjs:(objs0 + objs1) ~structures
          ~deletable)
  in
  (* The remap guarantee: a trace drawn as remapping really remaps. *)
  let ops =
    if with_remap && not (List.exists (function Trace.Remap _ -> true | _ -> false) ops)
    then begin
      let at = Random.State.int st nops in
      List.mapi
        (fun i op -> if i = at then Trace.Remap (Random.State.int st 2) else op)
        ops
    end
    else ops
  in
  { Trace.mseed; slots; objs0; objs1; structures; ops }

let trace ?structures ~seed ~index () =
  let st = Random.State.make [| 0xC04F; seed; index |] in
  trace_rand ?structures st
