(** Executes a conformance trace on a real {!Core.Machine.t} under one
    pointer representation, producing the same op-indexed observables as
    {!Model.run} plus a post-remap snapshot stream for the pairwise
    differential mode.

    The world is set up so that every repr-independent observable really
    is repr-independent: the anonymous target objects and the playground
    slots are allocated {e first}, at offsets that do not depend on the
    representation (slots use a fixed 16-byte stride, wide enough for
    fat pointers); only then are the structures built. Remaps go through
    {!Core.Machine.remap_region}; for the swizzle representation each
    remap is bracketed by a full unswizzle (close the window: pack every
    playground slot and every structure) and a re-swizzle after the
    move, per Section 5's load/close passes. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Store = Nvmpi_nvregion.Store
module Swizzle = Core.Swizzle
module Node = Nvmpi_structures.Node
module Digest_obs = Nvmpi_structures.Digest_obs
module Metrics = Nvmpi_obs.Metrics

let payload = 16
(** Node payload bytes; {!Model} must use the same value. *)

let buckets = 64
(** Hash-set buckets (small: collisions are the interesting case). *)

let region_size = 1 lsl 18
let obj_size = 32
let slot_stride = 16

type obs =
  | Good of Model.obs
  | Other_target of int  (** pload decoded outside the object table *)
  | Crashed of string  (** unexpected exception; trace aborted here *)
  | Skipped  (** not executed (a preceding op crashed) *)

let obs_to_string = function
  | Good o -> Model.obs_to_string o
  | Other_target a -> Printf.sprintf "other-target:0x%x" a
  | Crashed e -> "crashed: " ^ e
  | Skipped -> "skipped"

type result = {
  obs : obs array;  (** one per trace op *)
  snaps : (int * string) list;
      (** (op index, canonical world snapshot) per executed [Remap] *)
  fatal : string option;  (** world setup itself crashed *)
}

(* Uniform handle over the four structure functors under one repr. *)
type shandle = {
  s_ins : int -> bool;
  s_del : int -> bool;
  s_mem : int -> bool;
  s_dig : unit -> Digest_obs.t;
  s_swz : unit -> unit;
  s_unswz : unit -> unit;
}

let struct_name st = "c-" ^ Trace.structure_name st

let make_shandle (module P : Core.Repr_sig.S) node st ~create =
  let name = struct_name st in
  match (st : Trace.structure) with
  | Slist ->
      let module L = Nvmpi_structures.Linked_list.Make (P) in
      let t = if create then L.create node ~name else L.attach node ~name in
      {
        s_ins = (fun k -> L.append t ~key:k; true);
        s_del = (fun k -> L.remove t ~key:k);
        s_mem = (fun k -> L.find t ~key:k);
        s_dig = (fun () -> L.digest t);
        s_swz = (fun () -> L.swizzle t);
        s_unswz = (fun () -> L.unswizzle t);
      }
  | Sbtree ->
      let module B = Nvmpi_structures.Bstree.Make (P) in
      let t = if create then B.create node ~name else B.attach node ~name in
      {
        s_ins = (fun k -> B.insert t ~key:k);
        s_del = (fun _ -> false);
        s_mem = (fun k -> B.search t ~key:k);
        s_dig = (fun () -> B.digest t);
        s_swz = (fun () -> B.swizzle t);
        s_unswz = (fun () -> B.unswizzle t);
      }
  | Shash ->
      let module H = Nvmpi_structures.Hashset.Make (P) in
      let t =
        if create then H.create node ~name ~buckets else H.attach node ~name
      in
      {
        s_ins = (fun k -> H.add t ~key:k);
        s_del = (fun k -> H.remove t ~key:k);
        s_mem = (fun k -> H.contains t ~key:k);
        s_dig = (fun () -> H.digest t);
        s_swz = (fun () -> H.swizzle t);
        s_unswz = (fun () -> H.unswizzle t);
      }
  | Strie ->
      let module T = Nvmpi_structures.Trie.Make (P) in
      let t = if create then T.create node ~name else T.attach node ~name in
      {
        s_ins = (fun k -> T.insert t (Trace.word_of_key k));
        s_del = (fun _ -> false);
        s_mem = (fun k -> T.contains t (Trace.word_of_key k));
        s_dig = (fun () -> T.digest t);
        s_swz = (fun () -> T.swizzle t);
        s_unswz = (fun () -> T.unswizzle t);
      }

let run ?obs_metrics ~repr:(module P : Core.Repr_sig.S)
    ~kind (tr : Trace.t) : result =
  let nops = List.length tr.ops in
  let obs = Array.make nops Skipped in
  let snaps = ref [] in
  let record_ops n =
    match obs_metrics with
    | Some m -> Metrics.incr ~by:n m "conform.ops"
    | None -> ()
  in
  try
    let store = Store.create () in
    let m = Machine.create ~seed:tr.mseed ~store () in
    let rid0 = Machine.create_region m ~size:region_size in
    let rid1 = Machine.create_region m ~size:region_size in
    let r0 = ref (Machine.open_region m rid0) in
    let r1 = ref (Machine.open_region m rid1) in
    (* Objects then slots, before anything repr-dependent: their
       region-relative offsets are the trace's object identities. *)
    let nobjs = tr.objs0 + tr.objs1 in
    let obj_off = Array.make (max 1 nobjs) 0 in
    for o = 0 to tr.objs0 - 1 do
      obj_off.(o) <- Region.offset_of_addr !r0 (Region.alloc !r0 obj_size)
    done;
    for o = tr.objs0 to nobjs - 1 do
      obj_off.(o) <- Region.offset_of_addr !r1 (Region.alloc !r1 obj_size)
    done;
    let slot_off = Array.make tr.slots 0 in
    for i = 0 to tr.slots - 1 do
      slot_off.(i) <- Region.offset_of_addr !r0 (Region.alloc !r0 slot_stride)
    done;
    if kind = Core.Repr.Based then Machine.set_based_region m rid0;
    let slot_addr i = Region.addr_of_offset !r0 slot_off.(i) in
    let obj_addr o =
      if o < tr.objs0 then Region.addr_of_offset !r0 obj_off.(o)
      else Region.addr_of_offset !r1 obj_off.(o)
    in
    for i = 0 to tr.slots - 1 do
      P.store m ~holder:(slot_addr i) Vaddr.null
    done;
    let fresh_node () = Node.make m ~mode:(Plain [| !r0 |]) ~payload in
    let structs = ref [] in
    let build ~create =
      let node = fresh_node () in
      structs :=
        List.map (fun st -> (st, make_shandle (module P) node st ~create))
          tr.structures
    in
    build ~create:true;
    let shandle st = List.assoc st !structs in
    let decode a =
      if Vaddr.is_null a then Good (Model.Ptr None)
      else begin
        let found = ref (Other_target (a :> int)) in
        for o = 0 to nobjs - 1 do
          if Vaddr.equal a (obj_addr o) then found := Good (Model.Ptr (Some o))
        done;
        !found
      end
    in
    let snapshot () =
      let b = Buffer.create 64 in
      for i = 0 to tr.slots - 1 do
        Printf.bprintf b "slot%d=%s " i
          (obs_to_string (decode (P.load m ~holder:(slot_addr i))))
      done;
      List.iter
        (fun st ->
          Printf.bprintf b "%s=%s " (Trace.structure_name st)
            (Digest_obs.to_string ((shandle st).s_dig ())))
        tr.structures;
      Buffer.contents b
    in
    let do_remap idx =
      if kind = Core.Repr.Swizzle then begin
        for i = 0 to tr.slots - 1 do
          ignore (Swizzle.unswizzle_slot m ~holder:(slot_addr i))
        done;
        List.iter (fun (_, h) -> h.s_unswz ()) !structs
      end;
      let rid = if idx = 0 then rid0 else rid1 in
      let r = Machine.remap_region m rid in
      if idx = 0 then r0 := r else r1 := r;
      (* Region 0 moved (or might have): every host-side handle caching
         absolute addresses — structure metas, list tails — is rebuilt
         from the named roots, which is what attach is for. *)
      build ~create:false;
      if kind = Core.Repr.Swizzle then begin
        for i = 0 to tr.slots - 1 do
          ignore (Swizzle.swizzle_slot m ~holder:(slot_addr i))
        done;
        List.iter (fun (_, h) -> h.s_swz ()) !structs
      end
    in
    let exec_op i (op : Trace.op) =
      record_ops 1;
      match op with
      | Remap idx ->
          do_remap idx;
          snaps := (i, snapshot ()) :: !snaps;
          Good Model.Done
      | Pstore (sl, None) ->
          P.store m ~holder:(slot_addr sl) Vaddr.null;
          Good Model.Done
      | Pstore (sl, Some o) ->
          P.store m ~holder:(slot_addr sl) (obj_addr o);
          Good Model.Done
      | Pload sl -> decode (P.load m ~holder:(slot_addr sl))
      | Ins (st, k) -> Good (Model.Bool ((shandle st).s_ins k))
      | Del (st, k) -> Good (Model.Bool ((shandle st).s_del k))
      | Mem (st, k) -> Good (Model.Bool ((shandle st).s_mem k))
      | Dig st ->
          let d = (shandle st).s_dig () in
          Good (Model.Digest (d.Digest_obs.nodes, d.Digest_obs.checksum))
    in
    (* A crash (anything but the sanctioned cross-region raise) aborts
       the trace: later ops stay [Skipped] — the machine state can no
       longer be trusted to terminate walks. *)
    (try
       List.iteri
         (fun i op ->
           match
             try `Obs (exec_op i op) with
             | Machine.Cross_region_store _ -> `Obs (Good Model.Raised)
             | e -> `Crash (Printexc.to_string e)
           with
           | `Obs o -> obs.(i) <- o
           | `Crash e ->
               obs.(i) <- Crashed e;
               raise Exit)
         tr.ops
     with Exit -> ());
    { obs; snaps = List.rev !snaps; fatal = None }
  with e ->
    { obs; snaps = List.rev !snaps; fatal = Some (Printexc.to_string e) }
