(** Executes a conformance trace on a real {!Core.Machine.t} under one
    pointer representation, producing the same op-indexed observables as
    {!Model.run} plus a post-remap snapshot stream for the pairwise
    differential mode.

    The world is set up so that every repr-independent observable really
    is repr-independent: the anonymous target objects and the playground
    slots are allocated {e first}, at offsets that do not depend on the
    representation (slots use a fixed 16-byte stride, wide enough for
    fat pointers); only then are the structures built. Remaps go through
    {!Core.Machine.remap_region}; for the swizzle representation each
    remap is bracketed by a full unswizzle (close the window: pack every
    playground slot and every structure) and a re-swizzle after the
    move, per Section 5's load/close passes. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Store = Nvmpi_nvregion.Store
module Swizzle = Core.Swizzle
module Node = Nvmpi_structures.Node
module Digest_obs = Nvmpi_structures.Digest_obs
module Metrics = Nvmpi_obs.Metrics
module Snapshot = Nvmpi_snapshot.Snapshot

let payload = 16
(** Node payload bytes; {!Model} must use the same value. *)

let buckets = 64
(** Hash-set buckets (small: collisions are the interesting case). *)

let region_size = 1 lsl 18
let obj_size = 32
let slot_stride = 16

type obs =
  | Good of Model.obs
  | Other_target of int  (** pload decoded outside the object table *)
  | Crashed of string  (** unexpected exception; trace aborted here *)
  | Skipped  (** not executed (a preceding op crashed) *)

let obs_to_string = function
  | Good o -> Model.obs_to_string o
  | Other_target a -> Printf.sprintf "other-target:0x%x" a
  | Crashed e -> "crashed: " ^ e
  | Skipped -> "skipped"

type result = {
  obs : obs array;  (** one per trace op *)
  snaps : (int * string) list;
      (** (op index, canonical world snapshot) per executed [Remap] *)
  fatal : string option;  (** world setup itself crashed *)
}

(* Uniform handle over the four structure functors under one repr. *)
type shandle = {
  s_ins : int -> bool;
  s_del : int -> bool;
  s_mem : int -> bool;
  s_dig : unit -> Digest_obs.t;
  s_swz : unit -> unit;
  s_unswz : unit -> unit;
}

let struct_name st = "c-" ^ Trace.structure_name st

(* The structure-handle constructor for one representation, applied
   statically to all nine representations below (the staged engine's
   pre-instantiated set) and dynamically to [(val Repr.m kind)] when
   the dispatch engine is selected. *)
module Shandle_of (P : Core.Repr_sig.S) = struct
  module SP = Nvmpi_structures.Specialized.Spec (P)

  let make node st ~create =
  let name = struct_name st in
  match (st : Trace.structure) with
  | Slist ->
      let module L = SP.List in
      let t = if create then L.create node ~name else L.attach node ~name in
      {
        s_ins = (fun k -> L.append t ~key:k; true);
        s_del = (fun k -> L.remove t ~key:k);
        s_mem = (fun k -> L.find t ~key:k);
        s_dig = (fun () -> L.digest t);
        s_swz = (fun () -> L.swizzle t);
        s_unswz = (fun () -> L.unswizzle t);
      }
  | Sbtree ->
      let module B = SP.Btree in
      let t = if create then B.create node ~name else B.attach node ~name in
      {
        s_ins = (fun k -> B.insert t ~key:k);
        s_del = (fun k -> B.remove t ~key:k);
        s_mem = (fun k -> B.search t ~key:k);
        s_dig = (fun () -> B.digest t);
        s_swz = (fun () -> B.swizzle t);
        s_unswz = (fun () -> B.unswizzle t);
      }
  | Shash ->
      let module H = SP.Hashset in
      let t =
        if create then H.create node ~name ~buckets else H.attach node ~name
      in
      {
        s_ins = (fun k -> H.add t ~key:k);
        s_del = (fun k -> H.remove t ~key:k);
        s_mem = (fun k -> H.contains t ~key:k);
        s_dig = (fun () -> H.digest t);
        s_swz = (fun () -> H.swizzle t);
        s_unswz = (fun () -> H.unswizzle t);
      }
  | Strie ->
      let module T = SP.Trie in
      let t = if create then T.create node ~name else T.attach node ~name in
      {
        s_ins = (fun k -> T.insert t (Trace.word_of_key k));
        s_del = (fun _ -> false);
        s_mem = (fun k -> T.contains t (Trace.word_of_key k));
        s_dig = (fun () -> T.digest t);
        s_swz = (fun () -> T.swizzle t);
        s_unswz = (fun () -> T.unswizzle t);
      }
end

module H_normal = Shandle_of (Core.Normal_ptr)
module H_off_holder = Shandle_of (Core.Off_holder)
module H_riv = Shandle_of (Core.Riv)
module H_fat = Shandle_of (Core.Fat)
module H_fat_cached = Shandle_of (Core.Fat_cached)
module H_based = Shandle_of (Core.Based_ptr)
module H_swizzle = Shandle_of (Core.Swizzle)
module H_packed_fat = Shandle_of (Core.Packed_fat)
module H_hw_oid = Shandle_of (Core.Hw_oid)

let make_shandle_staged kind node st ~create =
  match (kind : Core.Repr.kind) with
  | Normal -> H_normal.make node st ~create
  | Off_holder -> H_off_holder.make node st ~create
  | Riv -> H_riv.make node st ~create
  | Fat -> H_fat.make node st ~create
  | Fat_cached -> H_fat_cached.make node st ~create
  | Based -> H_based.make node st ~create
  | Swizzle -> H_swizzle.make node st ~create
  | Packed_fat -> H_packed_fat.make node st ~create
  | Hw_oid -> H_hw_oid.make node st ~create

let run ?obs_metrics ?repr ~kind (tr : Trace.t) : result =
  (* Engine selection, bound once per trace: the staged path goes
     through the pre-instantiated handles and per-kind direct dispatch;
     the dispatch path reproduces the historical behaviour — unpack a
     first-class module once and apply the structure functors at
     runtime. [?repr] forces the dispatch path with an arbitrary module
     standing in for [kind] — the harness self-test injects a
     deliberately buggy representation through it. *)
  let dispatch (module P : Core.Repr_sig.S) =
    let module H = Shandle_of (P) in
    ( H.make,
      (fun m ~holder v -> P.store m ~holder v),
      fun m ~holder -> P.load m ~holder )
  in
  let make_shandle, pstore, pload =
    match repr with
    | Some p -> dispatch p
    | None -> (
        match Core.Engine.mode () with
        | Core.Engine.Staged ->
            ( make_shandle_staged kind,
              (fun m ~holder v -> Core.Engine.store kind m ~holder v),
              fun m ~holder -> Core.Engine.load kind m ~holder )
        | Core.Engine.Dispatch -> dispatch (Core.Repr.m kind))
  in
  let nops = List.length tr.ops in
  let obs = Array.make nops Skipped in
  let snaps = ref [] in
  let record_ops n =
    match obs_metrics with
    | Some m -> Metrics.incr ~by:n m "conform.ops"
    | None -> ()
  in
  try
    let store = Store.create () in
    let m = Machine.create ~seed:tr.mseed ~store () in
    let rid0 = Machine.create_region m ~size:region_size in
    let rid1 = Machine.create_region m ~size:region_size in
    let r0 = ref (Machine.open_region m rid0) in
    let r1 = ref (Machine.open_region m rid1) in
    (* Objects then slots, before anything repr-dependent: their
       region-relative offsets are the trace's object identities. *)
    let nobjs = tr.objs0 + tr.objs1 in
    let obj_off = Array.make (max 1 nobjs) 0 in
    for o = 0 to tr.objs0 - 1 do
      obj_off.(o) <- Region.offset_of_addr !r0 (Region.alloc !r0 obj_size)
    done;
    for o = tr.objs0 to nobjs - 1 do
      obj_off.(o) <- Region.offset_of_addr !r1 (Region.alloc !r1 obj_size)
    done;
    let slot_off = Array.make tr.slots 0 in
    for i = 0 to tr.slots - 1 do
      slot_off.(i) <- Region.offset_of_addr !r0 (Region.alloc !r0 slot_stride)
    done;
    (* Snapshot-bearing traces get a dirty tracker + WAL per region
       (docs/SNAPSHOT.md), created after the repr-independent offsets so
       object identities match snapshot-free traces. Epochs then cover
       everything from slot init onward; [Sync] closes them. Traces
       without [Sync] skip the observers entirely and stay on the
       solo-observed fused path. *)
    let snapshots =
      if List.exists (function Trace.Sync -> true | _ -> false) tr.ops then
        Some
          ( Snapshot.create m !r0 ~log_cap:(64 * 1024) (),
            Snapshot.create m !r1 ~log_cap:(64 * 1024) () )
      else None
    in
    (* Pressure-relief valve: an epoch's log records must fit the WAL,
       so close the epoch early when the dirty set approaches capacity.
       Identical across representations in effect (sync has no
       observable) and across engines (both issue bit-identical access
       streams, hence identical dirty sets). *)
    let relieve s =
      if
        Snapshot.pending_log_bytes s + 12288 > Snapshot.log_capacity s
      then Snapshot.sync s
    in
    let relieve_all () =
      match snapshots with
      | Some (s0, s1) ->
          relieve s0;
          relieve s1
      | None -> ()
    in
    if kind = Core.Repr.Based then Machine.set_based_region m rid0;
    let slot_addr i = Region.addr_of_offset !r0 slot_off.(i) in
    let obj_addr o =
      if o < tr.objs0 then Region.addr_of_offset !r0 obj_off.(o)
      else Region.addr_of_offset !r1 obj_off.(o)
    in
    for i = 0 to tr.slots - 1 do
      pstore m ~holder:(slot_addr i) Vaddr.null
    done;
    let fresh_node () = Node.make m ~mode:(Plain [| !r0 |]) ~payload in
    let structs = ref [] in
    let build ~create =
      let node = fresh_node () in
      structs :=
        List.map (fun st -> (st, make_shandle node st ~create))
          tr.structures
    in
    build ~create:true;
    let shandle st = List.assoc st !structs in
    let decode a =
      if Vaddr.is_null a then Good (Model.Ptr None)
      else begin
        let found = ref (Other_target (a :> int)) in
        for o = 0 to nobjs - 1 do
          if Vaddr.equal a (obj_addr o) then found := Good (Model.Ptr (Some o))
        done;
        !found
      end
    in
    let snapshot () =
      let b = Buffer.create 64 in
      for i = 0 to tr.slots - 1 do
        Printf.bprintf b "slot%d=%s " i
          (obs_to_string (decode (pload m ~holder:(slot_addr i))))
      done;
      List.iter
        (fun st ->
          Printf.bprintf b "%s=%s " (Trace.structure_name st)
            (Digest_obs.to_string ((shandle st).s_dig ())))
        tr.structures;
      Buffer.contents b
    in
    let do_remap idx =
      if kind = Core.Repr.Swizzle then begin
        for i = 0 to tr.slots - 1 do
          ignore (Swizzle.unswizzle_slot m ~holder:(slot_addr i))
        done;
        List.iter (fun (_, h) -> h.s_unswz ()) !structs
      end;
      let rid = if idx = 0 then rid0 else rid1 in
      let r = Machine.remap_region m rid in
      if idx = 0 then r0 := r else r1 := r;
      (* The dirty set is region-relative; only the watched base moves. *)
      (match snapshots with
      | Some (s0, s1) -> Snapshot.retarget (if idx = 0 then s0 else s1) r
      | None -> ());
      (* Region 0 moved (or might have): every host-side handle caching
         absolute addresses — structure metas, list tails — is rebuilt
         from the named roots, which is what attach is for. *)
      build ~create:false;
      if kind = Core.Repr.Swizzle then begin
        for i = 0 to tr.slots - 1 do
          ignore (Swizzle.swizzle_slot m ~holder:(slot_addr i))
        done;
        List.iter (fun (_, h) -> h.s_swz ()) !structs
      end
    in
    let exec_op i (op : Trace.op) =
      record_ops 1;
      relieve_all ();
      match op with
      | Remap idx ->
          do_remap idx;
          snaps := (i, snapshot ()) :: !snaps;
          Good Model.Done
      | Pstore (sl, None) ->
          pstore m ~holder:(slot_addr sl) Vaddr.null;
          Good Model.Done
      | Pstore (sl, Some o) ->
          pstore m ~holder:(slot_addr sl) (obj_addr o);
          Good Model.Done
      | Pload sl -> decode (pload m ~holder:(slot_addr sl))
      | Ins (st, k) -> Good (Model.Bool ((shandle st).s_ins k))
      | Del (st, k) -> Good (Model.Bool ((shandle st).s_del k))
      | Mem (st, k) -> Good (Model.Bool ((shandle st).s_mem k))
      | Dig st ->
          let d = (shandle st).s_dig () in
          Good (Model.Digest (d.Digest_obs.nodes, d.Digest_obs.checksum))
      | Sync ->
          (match snapshots with
          | Some (s0, s1) ->
              Snapshot.sync s0;
              Snapshot.sync s1
          | None -> ());
          Good Model.Done
    in
    (* A crash (anything but the sanctioned cross-region raise) aborts
       the trace: later ops stay [Skipped] — the machine state can no
       longer be trusted to terminate walks. *)
    (try
       List.iteri
         (fun i op ->
           match
             try `Obs (exec_op i op) with
             | Machine.Cross_region_store _ -> `Obs (Good Model.Raised)
             | e -> `Crash (Printexc.to_string e)
           with
           | `Obs o -> obs.(i) <- o
           | `Crash e ->
               obs.(i) <- Crashed e;
               raise Exit)
         tr.ops
     with Exit -> ());
    { obs; snaps = List.rev !snaps; fatal = None }
  with e ->
    { obs; snaps = List.rev !snaps; fatal = Some (Printexc.to_string e) }
