(** The executable reference model — the oracle.

    A pure OCaml rendering of the paper's semantics with no simulator,
    no addresses and no bit tricks: a pointer {e is} an object identity
    (the trace's flat object index, i.e. a [(region, offset)] pair by
    construction), a slot is an [int option], and each structure is the
    obvious mathematical object (a key sequence, two key sets, a word
    set plus its created-prefix set). Remapping a region is — by
    definition of position independence — a no-op on every observable.

    The only machine-dependent knob is {!caps}: an intra-region-only
    representation ([cross_region = false]) must reject a store whose
    target lives in region 1 (slots all live in region 0), observed as
    {!obs.Raised}. Everything else is representation-independent, which
    is exactly the paper's observational-equivalence claim.

    Digests replicate what a structure's full walk checksums: per node,
    key (or flag) plus {!Nvmpi_structures.Node.payload_checksum} of the
    node's payload seed. *)

module IntSet = Set.Make (Int)
module StrSet = Set.Make (String)

type obs =
  | Done  (** op completed with no value: remap, accepted pstore *)
  | Raised  (** pstore rejected: [Machine.Cross_region_store] *)
  | Ptr of int option  (** pload: target object index, or null *)
  | Bool of bool  (** ins / del / mem answer *)
  | Digest of int * int  (** dig: (node count, checksum) *)

let obs_to_string = function
  | Done -> "done"
  | Raised -> "raised"
  | Ptr None -> "null"
  | Ptr (Some o) -> Printf.sprintf "obj%d" o
  | Bool b -> string_of_bool b
  | Digest (n, c) -> Printf.sprintf "(nodes %d checksum %d)" n c

type caps = { cross_region : bool }

type state = {
  slots : int option array;
  mutable list : int list;  (** append order, duplicates allowed *)
  mutable btree : IntSet.t;
  mutable hash : IntSet.t;
  mutable words : StrSet.t;
  mutable prefixes : StrSet.t;  (** nonempty prefixes ever created *)
  mutable trie_rooted : bool;
}

let pc ~payload seed = Nvmpi_structures.Node.payload_checksum ~payload ~seed

let key_digest ~payload keys =
  List.fold_left (fun acc k -> acc + k + pc ~payload k) 0 keys

let trie_prefix_seed p =
  let n = String.length p in
  ((n - 1) * 31) + (Char.code p.[n - 1] - Char.code 'a')

let digest ~payload st s =
  match (st : Trace.structure) with
  | Slist -> (List.length s.list, key_digest ~payload s.list)
  | Sbtree ->
      let keys = IntSet.elements s.btree in
      (List.length keys, key_digest ~payload keys)
  | Shash ->
      let keys = IntSet.elements s.hash in
      (List.length keys, key_digest ~payload keys)
  | Strie ->
      if not s.trie_rooted then (0, 0)
      else
        let nodes = 1 + StrSet.cardinal s.prefixes in
        let sum =
          StrSet.fold
            (fun p acc -> acc + pc ~payload (trie_prefix_seed p))
            s.prefixes
            (pc ~payload 0 (* the root's seed *))
        in
        (nodes, StrSet.cardinal s.words + sum)

let remove_first key l =
  let rec go acc = function
    | [] -> None
    | k :: rest when k = key -> Some (List.rev_append acc rest)
    | k :: rest -> go (k :: acc) rest
  in
  go [] l

let add_prefixes s word =
  s.trie_rooted <- true;
  for i = 1 to String.length word do
    s.prefixes <- StrSet.add (String.sub word 0 i) s.prefixes
  done

let exec_op ~payload ~caps (tr : Trace.t) s (op : Trace.op) : obs =
  match op with
  | Remap _ -> Done
  (* A sync is pure durability: by the discipline's contract it changes
     no observable (the conformance sweep under snapshot mode is what
     enforces this, docs/SNAPSHOT.md). *)
  | Sync -> Done
  | Pstore (sl, target) -> (
      match target with
      | None ->
          s.slots.(sl) <- None;
          Done
      | Some o ->
          if (not caps.cross_region) && o >= tr.objs0 then Raised
          else begin
            s.slots.(sl) <- Some o;
            Done
          end)
  | Pload sl -> Ptr s.slots.(sl)
  | Ins (Slist, k) ->
      s.list <- s.list @ [ k ];
      Bool true
  | Ins (Sbtree, k) ->
      let fresh = not (IntSet.mem k s.btree) in
      s.btree <- IntSet.add k s.btree;
      Bool fresh
  | Ins (Shash, k) ->
      let fresh = not (IntSet.mem k s.hash) in
      s.hash <- IntSet.add k s.hash;
      Bool fresh
  | Ins (Strie, k) ->
      let w = Trace.word_of_key k in
      let fresh = not (StrSet.mem w s.words) in
      s.words <- StrSet.add w s.words;
      add_prefixes s w;
      Bool fresh
  | Del (Slist, k) -> (
      match remove_first k s.list with
      | Some l ->
          s.list <- l;
          Bool true
      | None -> Bool false)
  | Del (Shash, k) ->
      let present = IntSet.mem k s.hash in
      s.hash <- IntSet.remove k s.hash;
      Bool present
  | Del (Sbtree, k) ->
      let present = IntSet.mem k s.btree in
      s.btree <- IntSet.remove k s.btree;
      Bool present
  | Del (Strie, _) -> Bool false (* ungenerated; tries have no removal *)
  | Mem (Slist, k) -> Bool (List.mem k s.list)
  | Mem (Sbtree, k) -> Bool (IntSet.mem k s.btree)
  | Mem (Shash, k) -> Bool (IntSet.mem k s.hash)
  | Mem (Strie, k) -> Bool (StrSet.mem (Trace.word_of_key k) s.words)
  | Dig st ->
      let n, c = digest ~payload st s in
      Digest (n, c)

let run ~caps ~payload (tr : Trace.t) : obs array =
  let s =
    {
      slots = Array.make tr.slots None;
      list = [];
      btree = IntSet.empty;
      hash = IntSet.empty;
      words = StrSet.empty;
      prefixes = StrSet.empty;
      trie_rooted = false;
    }
  in
  Array.of_list (List.map (exec_op ~payload ~caps tr s) tr.ops)
