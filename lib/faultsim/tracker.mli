(** Records the persistence event log of a run and folds it into live
    durability state.

    A tracker attaches to a machine's memory observer (stores), to the
    cachesim persist hook (flushes/fences) and to the machine's
    [crash_hook] (so {!Nvmpi_tx.Tx.simulate_crash} materializes its
    crash through the same definition of "durable"). Tracking begins at
    {!arm}: the contents of every open region at that moment form the
    durable base image — everything before arm is modelled as fully
    persisted.

    Recording is observation-only: the tracker never issues simulated
    accesses or charges (snapshots go through {!Nvmpi_memsim.Memsim}'s
    debug port), so an attached-but-unarmed tracker leaves cycle counts
    unchanged. {!checkpoint} is the exception by design — it {e is} the
    program action "flush everything volatile, then fence", charged
    normally. *)

type t

val attach : Core.Machine.t -> t
(** Registers the tracker with [machine]'s memory, timing model and
    crash hook. One tracker per machine. *)

val arm : t -> unit
(** Starts (or restarts) recording: snapshots all open regions as the
    durable base, clears the event log. Raises [Invalid_argument] if no
    region is open. *)

val disarm : t -> unit
val armed : t -> bool
val machine : t -> Core.Machine.t
val line_size : t -> int

(** {1 The event log} *)

val seq : t -> int
(** Events recorded since {!arm}. A {e crash point} [p] means "power
    fails after the first [p] events"; valid points are [0..seq t]. *)

val event : t -> int -> Events.t
val events : t -> Events.t array

val event_window : t -> upto:int -> width:int -> (int * Events.t) list
(** The last [width] events before crash point [upto], with their
    indices — the context a failure report prints. *)

(** {1 Durability state} *)

val tracked : t -> (Nvmpi_addr.Kinds.Rid.t * int * int * Bytes.t) list
(** Tracked regions as [(rid, base, size, base_image)]. *)

val crash_image : t -> Nvmpi_addr.Kinds.Rid.t -> Bytes.t
(** The region's durable bytes {e now} (crash point [seq t]). *)

val durable_bytes : t -> int
val volatile_bytes : t -> int

val checkpoint : ?fence:bool -> t -> unit
(** Flushes every line holding dirty or staged bytes of a tracked region
    (through {!Nvmpi_cachesim.Timing.flush}, so the flushes are charged
    and recorded) and issues a fence — after which the live state is
    exactly durable. [~fence:false] deliberately omits the fence: the
    fence-dropping test double the sweep must catch. *)

val apply_crash : t -> unit
(** Materializes a power failure on the live machine: every tracked
    region's memory reverts to its durable image, volatile tracking
    state is dropped, caches are cold-started. This is what the
    machine's [crash_hook] invokes. *)
