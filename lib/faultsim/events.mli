(** One entry of the ordered persistence event log a {!Tracker} records.

    The log is the complete persist-relevant history of a run: every NVM
    store into a tracked region, every cache-line flush of such a region
    (with the line's contents {e at flush time} — a clwb writes back
    whatever the line holds when it retires, not what the program last
    stored), and every persist fence. Crash points are positions in this
    log; the {!Image} durability state machine folds a prefix of it into
    the exact bytes NVM would hold at that point. *)

type t =
  | Store of { addr : int; size : int }
      (** a simulated store of [size] bytes at [addr]; the bytes are now
          dirty in the cache, not yet durable *)
  | Flush of { lo : int; snap : Bytes.t }
      (** clwb of one cache line, clamped to the tracked region:
          [snap] is the line's content starting at address [lo], captured
          when the flush retired; it becomes durable at the next fence *)
  | Fence  (** persist barrier: all flushed-but-pending lines are durable *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
