(** Crash-consistency scenarios: workloads instrumented with durability
    checkpoints plus an oracle that, given a crash point, decides whether
    a recovered machine is in a legal state.

    A scenario's [run] builds the workload on a fresh machine, arms a
    {!Tracker} at the point from which crashes are injected, and returns
    the tracker together with a [verify] function. [verify ~seq] is
    called on a {e recovery} machine booted from the durable image at
    crash point [seq] (regions remapped to fresh random segments) and
    returns [Ok ()] or [Error reason].

    [expect_fail] marks self-test doubles (e.g. a fence-dropping
    checkpoint): the sweep inverts the verdict — such a scenario passes
    only if at least one crash point produces a violation, proving the
    harness detects real durability bugs. *)

type run = {
  tracker : Tracker.t;
  verify :
    seq:int ->
    Core.Machine.t ->
    (Nvmpi_addr.Kinds.Rid.t * Nvmpi_nvregion.Region.t) list ->
    (unit, string) result;
}

type t = {
  name : string;
  expect_fail : bool;
  run : metrics:Nvmpi_obs.Metrics.t -> seed:int -> run;
}

val structure_scenario :
  ?keys:int ->
  ?batch:int ->
  ?fence:bool ->
  ?pinned_dependent:bool ->
  Nvmpi_experiments.Instance.structure ->
  Core.Repr.kind ->
  t
(** Builds the structure in batches with a {!Tracker.checkpoint} after
    each; the oracle is the live (count, checksum, membership) captured
    at the last durable checkpoint. [~fence:false] makes the self-test
    double. [~pinned_dependent:true] inverts the per-point verdict:
    recovery of the position-{e dependent} image after a remap must
    observably fail (used to pin [Normal]'s expected behaviour). *)

val kv_scenario : ?ops:int -> Core.Repr.kind -> t
(** Transactional key-value store: read-your-writes against the durable
    commit prefix, allowing the single in-flight transaction to be
    either fully applied or fully absent. *)

val tx_cells_scenario : ?txs:int -> unit -> t
(** Undo-logged multi-word transactions on one object: no crash point
    may expose a torn transaction. *)

val swizzle_window_scenario : ?keys:int -> unit -> t
(** Pins the swizzle representation's inherent crash window: between the
    load-time swizzle persist and the save-time unswizzle persist the
    image is position dependent, and recovery at a fresh segment must
    detectably fail; outside the window it must succeed exactly. *)

val alloc_scenario : ?ops:int -> unit -> t
(** Seeded alloc/free churn on a {!Nvmpi_palloc.Palloc} heap, every
    allocation published through a root cell. At every crash point
    recovery must yield a heap whose [check] passes and whose allocated
    set equals the rooted set — no leaked block, no double-mapped byte,
    no reachable-but-unbacked object. *)

val alloc_leak_selftest : unit -> t
(** Selftest double: durably clears a root before freeing its block,
    opening a window where a live block is unreachable. The sweep must
    report the leak ([expect_fail]). *)

val durable_reprs : Core.Repr.kind list
(** The 8-byte-slot representations the link-and-persist mark bit fits
    ([Nvmpi_structures.Durable.applicable]). *)

val durable_structures : Nvmpi_experiments.Instance.structure list
(** Hashset and bstree — the structures ported to the durable
    discipline. *)

val durable_scenario :
  ?ops:int ->
  ?drop_flushes:bool ->
  Nvmpi_experiments.Instance.structure ->
  Core.Repr.kind ->
  t
(** Insert/remove churn on a hashset or bstree under
    [Durable.Traverse] (docs/DURABLE.md). Oracle at every crash point:
    the recovered set equals the durable commit prefix of the op log
    (count, checksum and per-key membership, probed through a
    traverse-mode attach so marked-link repair is exercised), with the
    single in-flight op either fully applied or fully absent.
    [~drop_flushes:true] is the selftest double ([expect_fail]): every
    window flush/fence is suppressed, so completed ops never become
    durable and the oracle must flag the loss. *)

val snapshot_cells_scenario :
  ?epochs:int ->
  ?cells:int ->
  ?granularity:Nvmpi_snapshot.Snapshot.granularity ->
  ?drop_writeback:bool ->
  unit ->
  t
(** Failure-atomic snapshot epochs (docs/SNAPSHOT.md) over a strided
    cell array: plain un-instrumented stores between [Snapshot.sync]
    calls. Oracle at every crash point — including mid-log-append,
    post-commit pre-writeback, mid-replay (one epoch commits then
    replays explicitly) and pre-truncate: the recovered image, after
    [Snapshot.attach] replays any committed log, equals exactly the
    last synced epoch, with the in-flight sync all-or-nothing.
    [~drop_writeback:true] is the selftest double ([expect_fail]): the
    in-place write-back is suppressed while the truncate still runs,
    so a committed epoch is durably discarded and must be flagged. *)

val snapshot_kv_scenario :
  ?epochs:int ->
  ?granularity:Nvmpi_snapshot.Snapshot.granularity ->
  Core.Repr.kind ->
  t
(** Kvstore on the plain (snapshot) write path over a flush-free
    freelist heap: batches of puts/deletes closed by a sync. Epoch
    read-your-writes — every crash point recovers to the whole last
    synced batch (index, values and allocator state together) or, for
    the one in-flight sync, the next batch in full. *)

val defaults : unit -> t list
(** The full sweep: the paper's four structures under every
    position-independent representation, the kvstore under the core
    representations, raw transactions, the swizzle window, and the
    pinned position-dependent baseline — all nine representations
    appear. *)

val selftests : unit -> t list
(** Deliberately broken doubles the sweep must flag ([expect_fail]). *)
