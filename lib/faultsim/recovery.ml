module Machine = Core.Machine
module Store = Nvmpi_nvregion.Store
module Region = Nvmpi_nvregion.Region
module Metrics = Nvmpi_obs.Metrics
module Rid = Nvmpi_addr.Kinds.Rid

let store_of_images images =
  let store = Store.create () in
  List.iter
    (fun (rid, size, img) ->
      Store.add_with_rid store ~rid ~size;
      let blob = Store.find_exn store rid in
      Bytes.blit img 0 blob.Store.data 0 size)
    images;
  store

let boot ?metrics ~seed images =
  let store = store_of_images images in
  let machine = Machine.create ?metrics ~seed ~store () in
  let regions =
    List.map (fun (rid, _, _) -> (rid, Machine.open_region machine rid)) images
  in
  (machine, regions)
