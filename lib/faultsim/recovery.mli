(** Boots a fresh run from a crashed-region image set.

    The crash image becomes the canonical store blob of a brand-new
    {!Nvmpi_nvregion.Store.t}; a fresh machine (seeded, so region
    placement is reproducible yet different per crash point) opens each
    region at a freshly randomized segment — recovery must therefore
    survive both the byte-level truncation to durable state {e and} the
    remap, which is exactly the paper's position-independence claim. *)

val store_of_images :
  (Nvmpi_addr.Kinds.Rid.t * int * Bytes.t) list -> Nvmpi_nvregion.Store.t
(** A store whose blobs hold exactly the given [(rid, size, image)]s. *)

val boot :
  ?metrics:Nvmpi_obs.Metrics.t ->
  seed:int ->
  (Nvmpi_addr.Kinds.Rid.t * int * Bytes.t) list ->
  Core.Machine.t * (Nvmpi_addr.Kinds.Rid.t * Nvmpi_nvregion.Region.t) list
(** Builds the store, creates a machine over it and opens every region
    (validating region headers — a corrupted durable header surfaces
    here as [Failure]). *)
