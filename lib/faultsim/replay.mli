(** A forward cursor over a tracker's event log, materializing the
    durable image at successive crash points.

    Sweeping crash points in ascending order costs one fold over the
    whole log in total: {!advance} applies only the events between the
    previous point and the next one. *)

type t

val create : Tracker.t -> t
(** A cursor at crash point 0 (the durable base images at arm time). *)

val pos : t -> int

val advance : t -> upto:int -> unit
(** Moves the cursor to crash point [upto] (applies events
    [pos..upto-1]). Raises [Invalid_argument] when moving backwards or
    past the end of the log. *)

val images : t -> (Nvmpi_addr.Kinds.Rid.t * int * Bytes.t) list
(** Durable images of all tracked regions at the current crash point, as
    [(rid, size, bytes)] — the exact NVM contents a crash here leaves. *)

val durable_bytes : t -> int
val volatile_bytes : t -> int
