(** The crash-point sweep: runs a scenario once, then for every selected
    crash point materializes the durable image, boots a recovery machine
    at fresh segments and asks the scenario's oracle for a verdict.

    One {!Replay} cursor walks the points in ascending order, so a whole
    sweep costs a single fold over the event log regardless of how many
    points are explored. *)

type mode =
  | After_fences
      (** one point after every fence, plus the endpoints — the moments
          a crash can actually expose distinct durable states *)
  | Exhaustive  (** every event index (after every store/flush/fence) *)
  | Sampled of int  (** [k] seeded uniform draws, plus the endpoints *)

val mode_to_string : mode -> string

type failure = {
  seq : int;  (** crash point *)
  detail : string;  (** violated invariant *)
  window : (int * Events.t) list;  (** trailing event context *)
}

type scenario_result = {
  name : string;
  expect_fail : bool;
  points : int;
  failures : failure list;
  durable_bytes : int;
  volatile_bytes : int;
  wall_ns : int;
      (** host wall-clock for the whole scenario (workload + sweep).
          Deliberately absent from {!json_of_report}, which stays
          byte-identical across hosts and [jobs] values; [nvmpi crash
          --wall-json] writes wall numbers to a separate document. *)
}

type report = { seed : int; mode : mode; scenarios : scenario_result list }

val scenario_ok : scenario_result -> bool
(** Failures empty — inverted for [expect_fail] self-test doubles, which
    pass only when the sweep caught at least one violation. *)

val ok : report -> bool

val run_scenario :
  ?jobs:int ->
  metrics:Nvmpi_obs.Metrics.t ->
  seed:int ->
  mode:mode ->
  Scenario.t ->
  scenario_result
(** [jobs > 1] splits the crash points into contiguous chunks evaluated
    on a {!Nvmpi_parsweep.Pool} — one private {!Replay} cursor per
    chunk, recovery machines on private metrics registries — and merges
    outcomes in ascending point order on the calling domain. The result
    (and the shared registry's counters) are identical for any [jobs];
    only wall-clock changes. *)

val run :
  ?jobs:int ->
  ?mode:mode ->
  metrics:Nvmpi_obs.Metrics.t ->
  seed:int ->
  Scenario.t list ->
  report
(** Scenario workloads always run serially on the calling domain (they
    feed the shared metrics registry); [jobs] then evaluates {e every}
    chunk of {e every} scenario's crash points on a single Domain pool
    (one spawn per sweep), merging per scenario as in {!run_scenario}.
    Under [jobs > 1] each [wall_ns] is the scenario's serial workload
    time plus the summed chunk-evaluation time — chunks of different
    scenarios overlap, so per-scenario numbers are CPU-like; only the
    report total is comparable to elapsed time at [jobs = 1]. *)

val json_of_report : report -> Nvmpi_obs.Json.t
(** Deterministic sweep report (kind ["faultsim"]) — byte-identical for
    a given seed and mode whatever the host or [jobs] value. *)

val wall_json_of_report : jobs:int -> report -> Nvmpi_obs.Json.t
(** Host wall-clock companion document (kind ["faultsim-wall"]):
    [jobs], total and per-scenario [wall_ns]. Kept separate from
    {!json_of_report} precisely because it is nondeterministic. *)

val pp_report : Format.formatter -> report -> unit
