(** The crash-point sweep: runs a scenario once, then for every selected
    crash point materializes the durable image, boots a recovery machine
    at fresh segments and asks the scenario's oracle for a verdict.

    One {!Replay} cursor walks the points in ascending order, so a whole
    sweep costs a single fold over the event log regardless of how many
    points are explored. *)

type mode =
  | After_fences
      (** one point after every fence, plus the endpoints — the moments
          a crash can actually expose distinct durable states *)
  | Exhaustive  (** every event index (after every store/flush/fence) *)
  | Sampled of int  (** [k] seeded uniform draws, plus the endpoints *)

val mode_to_string : mode -> string

type failure = {
  seq : int;  (** crash point *)
  detail : string;  (** violated invariant *)
  window : (int * Events.t) list;  (** trailing event context *)
}

type scenario_result = {
  name : string;
  expect_fail : bool;
  points : int;
  failures : failure list;
  durable_bytes : int;
  volatile_bytes : int;
}

type report = { seed : int; mode : mode; scenarios : scenario_result list }

val scenario_ok : scenario_result -> bool
(** Failures empty — inverted for [expect_fail] self-test doubles, which
    pass only when the sweep caught at least one violation. *)

val ok : report -> bool

val run_scenario :
  metrics:Nvmpi_obs.Metrics.t ->
  seed:int ->
  mode:mode ->
  Scenario.t ->
  scenario_result

val run :
  ?mode:mode ->
  metrics:Nvmpi_obs.Metrics.t ->
  seed:int ->
  Scenario.t list ->
  report

val json_of_report : report -> Nvmpi_obs.Json.t
val pp_report : Format.formatter -> report -> unit
