module Machine = Core.Machine
module Repr = Core.Repr
module Store = Nvmpi_nvregion.Store
module Region = Nvmpi_nvregion.Region
module Memsim = Nvmpi_memsim.Memsim
module Metrics = Nvmpi_obs.Metrics
module Rid = Nvmpi_addr.Kinds.Rid
module Vaddr = Nvmpi_addr.Kinds.Vaddr
module Node = Nvmpi_structures.Node
module Instance = Nvmpi_experiments.Instance
module Workload = Nvmpi_experiments.Workload
module Palloc = Nvmpi_palloc.Palloc
module Timing = Nvmpi_cachesim.Timing
module Objstore = Nvmpi_tx.Objstore
module Tx = Nvmpi_tx.Tx
module Kvstore = Nvmpi_apps.Kvstore

type run = {
  tracker : Tracker.t;
  verify :
    seq:int ->
    Machine.t ->
    (Rid.t * Region.t) list ->
    (unit, string) result;
}

type t = {
  name : string;
  expect_fail : bool;
  run : metrics:Metrics.t -> seed:int -> run;
}

let region_size = 1 lsl 20
let payload = 32

let boot ~metrics ~seed =
  let store = Store.create () in
  let machine = Machine.create ~metrics ~seed ~store () in
  let rid = Machine.create_region machine ~size:region_size in
  let region = Machine.open_region machine rid in
  (machine, rid, region)

let find_region rid regions =
  match List.assoc_opt rid regions with
  | Some r -> r
  | None -> failwith "recovered store lost the region"

(* {1 Plain-mode structures}

   The structure is built between checkpoints; the oracle is the state
   at the last checkpoint whose fence precedes the crash point — between
   fences the durable image cannot change, so recovery must reproduce
   that checkpoint exactly: node count, payload checksum, and membership
   of every key inserted so far (probed through the recovered pointers
   at the new segment). *)

type checkpointed = {
  upto : int; (* first crash point at which this state is durable *)
  count : int;
  checksum : int;
  present : int list;
}

let structure_scenario ?(keys = 12) ?(batch = 4) ?(fence = true)
    ?(pinned_dependent = false) structure repr =
  let name =
    let base =
      Printf.sprintf "%s/%s"
        (Instance.structure_name structure)
        (Repr.to_string repr)
    in
    if not fence then "selftest-nofence-" ^ base
    else if pinned_dependent then "pinned-dependent-" ^ base
    else "struct-" ^ base
  in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    if repr = Repr.Based then Machine.set_based_region machine rid;
    let node = Node.make machine ~mode:(Node.Plain [| region |]) ~payload in
    let root = "faultsim" in
    let inst = Instance.create structure repr node ~name:root in
    let ks = Workload.keys ~n:keys ~seed:(seed + 17) in
    (* The pinned scenario must have live pointers in the durable base
       image at arm time — an empty structure would (correctly) survive
       the remap, leaving nothing to pin. *)
    let pre =
      if pinned_dependent then
        Array.to_list (Workload.keys ~n:4 ~seed:(seed + 91))
      else []
    in
    List.iter inst.Instance.insert pre;
    let original_base = Region.base region in
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let cps = ref [] in
    let record present =
      let count, checksum = inst.Instance.traverse () in
      cps := { upto = Tracker.seq tracker; count; checksum; present } :: !cps
    in
    record pre;
    let inserted = ref pre in
    Array.iteri
      (fun i k ->
        inst.Instance.insert k;
        inserted := k :: !inserted;
        if (i + 1) mod batch = 0 || i = Array.length ks - 1 then begin
          Tracker.checkpoint ~fence tracker;
          record !inserted
        end)
      ks;
    let cps = List.rev !cps in
    let all_keys = Array.to_list ks @ pre in
    let absent_probe = List.fold_left max 0 all_keys + 1 in
    let check_against cp machine' region' =
      if repr = Repr.Based then
        Machine.set_based_region machine' (Region.rid region');
      let node' =
        Node.make machine' ~mode:(Node.Plain [| region' |]) ~payload
      in
      let inst' = Instance.attach structure repr node' ~name:root in
      let count, checksum = inst'.Instance.traverse () in
      if count <> cp.count then
        Error
          (Printf.sprintf "traverse visited %d nodes, durable state holds %d"
             count cp.count)
      else if checksum <> cp.checksum then
        Error
          (Printf.sprintf "traverse checksum 0x%x, durable state has 0x%x"
             checksum cp.checksum)
      else begin
        match
          List.find_opt
            (fun k -> inst'.Instance.search k <> List.mem k cp.present)
            all_keys
        with
        | Some k ->
            Error
              (Printf.sprintf "key %d %s after recovery" k
                 (if List.mem k cp.present then "missing" else "present"))
        | None ->
            if inst'.Instance.search absent_probe then
              Error
                (Printf.sprintf "never-inserted key %d found after recovery"
                   absent_probe)
            else Ok ()
      end
    in
    let verify ~seq machine' regions' =
      let region' = find_region rid regions' in
      let cp =
        List.fold_left
          (fun acc c -> if c.upto <= seq then c else acc)
          (List.hd cps) cps
      in
      if not pinned_dependent then check_against cp machine' region'
      else if Vaddr.equal (Region.base region') original_base then
        (* The random remap landed on the original segment: absolute
           pointers happen to be valid, nothing to pin. *)
        Ok ()
      else begin
        (* Pinned failure mode: the durable image carries absolute
           pointers from the previous mapping; after the remap the
           corruption must be observable. *)
        match check_against cp machine' region' with
        | Error _ | (exception _) -> Ok ()
        | Ok () ->
            Error
              "position-dependent image recovered cleanly after remap; \
               expected corruption went undetected"
      end
    in
    { tracker; verify }
  in
  { name; expect_fail = not fence; run }

(* {1 Kvstore over transactions}

   Each put/delete is one undo-logged transaction. At any crash point
   the recovered store must equal the map after all transactions whose
   commit is durable, except that the single in-flight transaction (if
   the crash lands inside its window) may be either fully absent or
   fully applied — never torn. *)

type kv_op = {
  before : int;
  after : int;
  apply : (int * string) list -> (int * string) list;
}

let model_put k v m = (k, v) :: List.remove_assoc k m
let model_del k m = List.remove_assoc k m
let canon m = List.sort compare m

let describe_map m =
  "{"
  ^ String.concat "; "
      (List.map (fun (k, v) -> Printf.sprintf "%d:%S" k v) m)
  ^ "}"

let kv_scenario ?(ops = 8) repr =
  let name = Printf.sprintf "kvstore/%s" (Repr.to_string repr) in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    if repr = Repr.Based then Machine.set_based_region machine rid;
    let os = Objstore.create machine region () in
    let kv = Kvstore.create os ~repr ~name:"kv" ~buckets:8 () in
    let initial = ref [] in
    for k = 1 to 3 do
      let v = Printf.sprintf "init-%d" k in
      Kvstore.put kv ~key:k v;
      initial := model_put k v !initial
    done;
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let log = ref [] in
    for i = 1 to ops do
      let key = (i mod 5) + 1 in
      let before = Tracker.seq tracker in
      let apply =
        if i mod 4 = 0 then begin
          ignore (Kvstore.delete kv ~key);
          model_del key
        end
        else begin
          let v = Printf.sprintf "v%d-%d" i key in
          Kvstore.put kv ~key v;
          model_put key v
        end
      in
      let after = Tracker.seq tracker in
      log := { before; after; apply } :: !log
    done;
    let log = List.rev !log in
    let universe = [ 1; 2; 3; 4; 5; 6 ] in
    let initial = !initial in
    let verify ~seq machine' regions' =
      let region' = find_region rid regions' in
      if repr = Repr.Based then
        Machine.set_based_region machine' (Region.rid region');
      let os' = Objstore.attach machine' region' in
      if Objstore.log_entries os' <> 0 then
        Error "undo log still has records after recovery"
      else begin
        let kv' = Kvstore.attach os' ~repr ~name:"kv" in
        let committed =
          List.fold_left
            (fun m op -> if op.after <= seq then op.apply m else m)
            initial log
        in
        let candidates =
          canon committed
          ::
          (match
             List.find_opt (fun op -> op.before < seq && seq < op.after) log
           with
          | Some op -> [ canon (op.apply committed) ]
          | None -> [])
        in
        let actual =
          List.filter_map
            (fun k ->
              match Kvstore.get kv' ~key:k with
              | Some v -> Some (k, v)
              | None -> None)
            universe
          |> canon
        in
        if List.mem actual candidates then Ok ()
        else
          Error
            (Printf.sprintf "read-your-writes: recovered %s, expected %s"
               (describe_map actual)
               (String.concat " or " (List.map describe_map candidates)))
      end
    in
    { tracker; verify }
  in
  { name; expect_fail = false; run }

(* {1 Raw object-store transactions}

   A bank-cell workload straight on Tx.store64: each transaction writes
   two of eight cells. Atomicity per transaction, checked against the
   durable commit prefix. *)

let tx_cells_scenario ?(txs = 6) () =
  let name = "objstore-tx-cells" in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    let os = Objstore.create machine region () in
    let cells = Objstore.alloc os ~tag:0xCE11 ~size:64 () in
    let mem = machine.Machine.mem in
    for i = 0 to 7 do
      Memsim.store64 mem (Vaddr.add cells (8 * i)) (100 + i)
    done;
    Region.set_root region "cells" cells;
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let tx = Tx.create os in
    let log = ref [] in
    for j = 1 to txs do
      let i1 = j mod 8 and i2 = (3 * j) mod 8 in
      let v1 = (j * 1000) + i1 and v2 = (j * 1000) + i2 + 7 in
      let before = Tracker.seq tracker in
      Tx.begin_tx tx;
      Tx.store64 tx (Vaddr.add cells (8 * i1)) v1;
      Tx.store64 tx (Vaddr.add cells (8 * i2)) v2;
      Tx.commit tx;
      let after = Tracker.seq tracker in
      log := (before, after, [ (i1, v1); (i2, v2) ]) :: !log
    done;
    let log = List.rev !log in
    let verify ~seq machine' regions' =
      let region' = find_region rid regions' in
      let os' = Objstore.attach machine' region' in
      if Objstore.log_entries os' <> 0 then
        Error "undo log still has records after recovery"
      else begin
        let cells' =
          match Region.root region' "cells" with
          | Some a -> a
          | None -> failwith "cells root lost"
        in
        let apply writes arr =
          List.iter (fun (i, v) -> arr.(i) <- v) writes
        in
        let committed = Array.init 8 (fun i -> 100 + i) in
        List.iter
          (fun (_, after, writes) ->
            if after <= seq then apply writes committed)
          log;
        let actual =
          Array.init 8 (fun i ->
              Memsim.load64 machine'.Machine.mem (Vaddr.add cells' (8 * i)))
        in
        let show a =
          String.concat "," (Array.to_list (Array.map string_of_int a))
        in
        if actual = committed then Ok ()
        else begin
          match
            List.find_opt (fun (b, a, _) -> b < seq && seq < a) log
          with
          | Some (_, _, writes)
            when actual
                 =
                 let v = Array.copy committed in
                 apply writes v;
                 v ->
              Ok ()
          | _ ->
              Error
                (Printf.sprintf "torn cells after recovery: [%s], expected [%s]"
                   (show actual) (show committed))
        end
      end
    in
    { tracker; verify }
  in
  { name; expect_fail = false; run }

(* {1 The swizzle window}

   Between the swizzle (load-time) and unswizzle (save-time) passes a
   swizzled structure is position dependent on NVM. A crash while the
   image is packed recovers; a crash after a persist of the swizzled
   form must observably fail after the remap — the pinned failure mode
   this scenario documents. *)

let swizzle_window_scenario ?(keys = 8) () =
  let name = "swizzle-unswizzle-window" in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    let node = Node.make machine ~mode:(Node.Plain [| region |]) ~payload in
    let root = "swz" in
    let inst = Instance.create Instance.List Repr.Swizzle node ~name:root in
    let ks = Workload.keys ~n:keys ~seed:(seed + 23) in
    Array.iter (fun k -> inst.Instance.insert k) ks;
    let expected = inst.Instance.traverse () in
    inst.Instance.unswizzle ();
    let original_base = Region.base region in
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    inst.Instance.swizzle ();
    Tracker.checkpoint tracker;
    (* The fence just issued persisted absolute pointers: every crash
       point from here until the post-unswizzle fence inherits them. *)
    let bad_from = Tracker.seq tracker in
    inst.Instance.unswizzle ();
    Tracker.checkpoint tracker;
    let good_from = Tracker.seq tracker in
    let verify ~seq machine' regions' =
      let region' = find_region rid regions' in
      let attempt =
        try
          let node' =
            Node.make machine' ~mode:(Node.Plain [| region' |]) ~payload
          in
          let inst' =
            Instance.attach Instance.List Repr.Swizzle node' ~name:root
          in
          inst'.Instance.swizzle ();
          Ok (inst'.Instance.traverse ())
        with e -> Error (Printexc.to_string e)
      in
      let in_window = seq >= bad_from && seq < good_from in
      if not in_window then begin
        match attempt with
        | Ok got when got = expected -> Ok ()
        | Ok (c, s) ->
            Error
              (Printf.sprintf
                 "packed image recovered to %d nodes (0x%x), expected %d \
                  (0x%x)"
                 c s (fst expected) (snd expected))
        | Error msg ->
            Error ("recovery failed outside the swizzled window: " ^ msg)
      end
      else if Vaddr.equal (Region.base region') original_base then Ok ()
      else begin
        match attempt with
        | Error _ -> Ok () (* dangling absolute pointer faulted: pinned *)
        | Ok got when got <> expected -> Ok () (* visible corruption *)
        | Ok _ ->
            Error
              "swizzled (position-dependent) image recovered cleanly after \
               remap; expected corruption went undetected"
      end
    in
    { tracker; verify }
  in
  { name; expect_fail = false; run }

(* {1 Allocator churn}

   Seeded alloc/free churn straight on a palloc heap carved from the
   boot region, every allocation published through a root cell. The
   oracle at every crash point, after [Palloc.recover]:

   - [Palloc.check]: the headers tile the heap (no byte owned by two
     blocks), no block is both free-listed and reachable, lists are
     exact;
   - the allocated set equals the root set: every non-empty root
     references a live block (nothing reachable is unbacked) and every
     live block is referenced by exactly one root (nothing leaked) —
     [alloc_into]/[free_from] promise exactly this atomicity. *)

let palloc_heap_off region =
  Nvmpi_addr.Bitops.align_up (Region.heap_top region) 16

let palloc_over machine region ~fresh =
  let heap_off = palloc_heap_off region in
  let lo = Region.addr_of_offset region heap_off in
  let hi = Vaddr.add (Region.base region) (Region.size region) in
  (if fresh then Palloc.init else Palloc.recover)
    ~mem:machine.Machine.mem ~timing:machine.Machine.timing
    ~metrics:(Machine.metrics machine) ~lo ~hi

let verify_palloc machine' region' =
  match palloc_over machine' region' ~fresh:false with
  | exception Palloc.Corrupted msg ->
      Error ("allocator recovery failed: " ^ msg)
  | t' -> (
      match Palloc.check t' with
      | exception Palloc.Corrupted msg ->
          Error ("allocator invariant violated: " ^ msg)
      | () ->
          let rooted =
            List.init Palloc.roots (fun i -> Palloc.root_get t' i)
            |> List.filter (fun p -> p <> 0)
            |> List.sort compare
          in
          let live = Palloc.allocated_payloads t' in
          if live = rooted then Ok ()
          else
            Error
              (Printf.sprintf
                 "allocator leak/double-map: %d live blocks vs %d rooted \
                  offsets"
                 (List.length live) (List.length rooted)))

let alloc_scenario ?(ops = 14) () =
  let name = "palloc-churn" in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    let t = palloc_over machine region ~fresh:true in
    (* A little pre-arm history so the churn frees real blocks. *)
    ignore (Palloc.alloc_into t ~root:0 24);
    ignore (Palloc.alloc_into t ~root:1 5000);
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let rng = Random.State.make [| seed; 0xA110C |] in
    let sizes = [| 16; 4000; 200; 9000; 24; 120; 4096; 48; 1500; 600 |] in
    for i = 1 to ops do
      let root = i mod 6 in
      if Palloc.root_get t root <> 0 then Palloc.free_from t ~root
      else
        ignore
          (Palloc.alloc_into t ~root
             sizes.(Random.State.int rng (Array.length sizes)))
    done;
    let verify ~seq:_ machine' regions' =
      verify_palloc machine' (find_region rid regions')
    in
    { tracker; verify }
  in
  { name; expect_fail = false; run }

(* Selftest double: clear a root cell durably {e before} freeing the
   block it referenced. Every crash point between those two fences has
   a live block no root references — a leak the sweep must call out. *)
let alloc_leak_selftest () =
  let name = "selftest-leak-palloc" in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    let t = palloc_over machine region ~fresh:true in
    let p = Palloc.alloc_into t ~root:2 160 in
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let timing = machine.Machine.timing in
    Memsim.store64 machine.Machine.mem (Palloc.root_addr t 2) 0;
    Timing.flush timing ~addr:((Palloc.root_addr t 2 :> int));
    Timing.fence timing;
    (* The block is now unreachable but still allocated: leaked. *)
    Palloc.free t p;
    let verify ~seq:_ machine' regions' =
      verify_palloc machine' (find_region rid regions')
    in
    { tracker; verify }
  in
  { name; expect_fail = true; run }

(* {1 Durable sets (link-and-persist)}

   Hashset/bstree under [Durable.Traverse] (docs/DURABLE.md): traversals
   flush nothing, each insert/remove persists exactly one modification
   window (fresh-node lines + one marked link flush + fence). The oracle
   at every crash point: the recovered set equals the durable commit
   prefix of the op log, except the single in-flight op may be either
   fully applied or fully absent — never torn. Count, checksum and
   per-key membership are all probed through a traverse-mode attach, so
   recovery also exercises the marked-link repair path (the final
   mark-clearing store is deliberately never flushed). *)

module Durable = Nvmpi_structures.Durable
module IntSet = Set.Make (Int)

type durable_op = {
  d_before : int;
  d_after : int;
  d_key : int;
  d_insert : bool;
}

(* The 8-byte-slot encodings the mark bit fits ([Durable.applicable]);
   Fat/Fat_cached keep the eager discipline and are covered by the
   plain-mode structure scenarios above. *)
let durable_reprs =
  [ Repr.Off_holder; Repr.Riv; Repr.Based; Repr.Packed_fat; Repr.Hw_oid ]

let durable_structures = [ Instance.Hashset; Instance.Btree ]

let durable_scenario ?(ops = 14) ?(drop_flushes = false) structure repr =
  let name =
    let base =
      Printf.sprintf "durable-%s/%s"
        (Instance.structure_name structure)
        (Repr.to_string repr)
    in
    if drop_flushes then "selftest-dropflush-" ^ base else base
  in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    if repr = Repr.Based then Machine.set_based_region machine rid;
    let node =
      Node.make ~durability:Durable.Traverse machine
        ~mode:(Node.Plain [| region |]) ~payload
    in
    let root = "durset" in
    let inst = Instance.create structure repr node ~name:root in
    (* A small key universe so removals keep biting; the pre-arm subset
       is durable via the tracker's attach-time baseline. *)
    let universe = Workload.keys ~n:9 ~seed:(seed + 29) in
    let model = ref IntSet.empty in
    Array.iteri
      (fun i k ->
        if i < 4 then begin
          inst.Instance.insert k;
          model := IntSet.add k !model
        end)
      universe;
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let initial = !model in
    let rng = Random.State.make [| seed; 0xD5E7 |] in
    let log = ref [] in
    if drop_flushes then Durable.drop_window_flushes := true;
    Fun.protect
      ~finally:(fun () -> Durable.drop_window_flushes := false)
      (fun () ->
        for _ = 1 to ops do
          let k = universe.(Random.State.int rng (Array.length universe)) in
          let before = Tracker.seq tracker in
          let insert = not (IntSet.mem k !model) in
          if insert then inst.Instance.insert k
          else ignore (inst.Instance.remove k);
          model := (if insert then IntSet.add else IntSet.remove) k !model;
          let after = Tracker.seq tracker in
          log :=
            { d_before = before; d_after = after; d_key = k; d_insert = insert }
            :: !log
        done);
    let log = List.rev !log in
    let apply op set =
      (if op.d_insert then IntSet.add else IntSet.remove) op.d_key set
    in
    let expected_of set =
      ( IntSet.cardinal set,
        IntSet.fold
          (fun k acc -> acc + k + Node.payload_checksum ~payload ~seed:k)
          set 0 )
    in
    let describe set =
      "{"
      ^ String.concat ";" (List.map string_of_int (IntSet.elements set))
      ^ "}"
    in
    let verify ~seq machine' regions' =
      let region' = find_region rid regions' in
      if repr = Repr.Based then
        Machine.set_based_region machine' (Region.rid region');
      let node' =
        Node.make ~durability:Durable.Traverse machine'
          ~mode:(Node.Plain [| region' |]) ~payload
      in
      let inst' = Instance.attach structure repr node' ~name:root in
      let committed =
        List.fold_left
          (fun acc op -> if op.d_after <= seq then apply op acc else acc)
          initial log
      in
      let candidates =
        committed
        ::
        (match
           List.find_opt (fun op -> op.d_before < seq && seq < op.d_after) log
         with
        | Some op -> [ apply op committed ]
        | None -> [])
      in
      let count, checksum = inst'.Instance.traverse () in
      match
        List.find_opt (fun s -> expected_of s = (count, checksum)) candidates
      with
      | None ->
          Error
            (Printf.sprintf
               "recovered set has %d nodes (0x%x), expected %s — a completed \
                op was lost or a partial node is reachable"
               count checksum
               (String.concat " or " (List.map describe candidates)))
      | Some set -> (
          match
            Array.to_list universe
            |> List.find_opt (fun k ->
                   inst'.Instance.search k <> IntSet.mem k set)
          with
          | Some k ->
              Error
                (Printf.sprintf "key %d %s after recovery" k
                   (if IntSet.mem k set then "missing" else "present"))
          | None -> Ok ())
    in
    { tracker; verify }
  in
  { name; expect_fail = drop_flushes; run }

(* {1 Failure-atomic snapshots (FAMS/WAL)}

   Epochs of plain (un-instrumented) stores closed by [Snapshot.sync]
   (docs/SNAPSHOT.md). The oracle at every crash point: the recovered
   state — after [Snapshot.attach] replays any committed-but-untruncated
   log — equals the last epoch whose sync completed before the crash,
   except that the single in-flight sync may already be fully applied
   (its commit fence is the all-or-nothing pivot); never anything torn.
   Crash points land mid-log-append, post-commit pre-writeback and
   pre-truncate organically; one epoch runs [sync ~stop_after:`Commit]
   followed by an explicit [replay] so the replay path itself is part
   of the tracked event stream and gets mid-replay crash points. *)

module Snapshot = Nvmpi_snapshot.Snapshot

type snap_epoch = { s_before : int; s_after : int; s_cells : int array }

let snapshot_cells_scenario ?(epochs = 5) ?(cells = 16)
    ?(granularity = Snapshot.Line) ?(drop_writeback = false) () =
  let name =
    let base =
      Printf.sprintf "snapshot-cells/%s"
        (Snapshot.granularity_to_string granularity)
    in
    if drop_writeback then "selftest-snapshot-nowb-" ^ base else base
  in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    (* Cells at a 520-byte stride: one epoch's writes scatter over many
       lines and several pages, so a torn epoch is observable and the
       line-vs-page log shapes differ. *)
    let stride = 520 in
    let block = Region.alloc region (cells * stride) in
    Region.set_root region "snapcells" block;
    let cell i = Vaddr.add block (i * stride) in
    let mem = machine.Machine.mem in
    let model = Array.init cells (fun i -> 1000 + i) in
    Array.iteri (fun i v -> Memsim.store64 mem (cell i) v) model;
    let snap = Snapshot.create machine region ~granularity () in
    Snapshot.sync snap;
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let log = ref [] in
    if drop_writeback then Snapshot.drop_writeback := true;
    Fun.protect
      ~finally:(fun () -> Snapshot.drop_writeback := false)
      (fun () ->
        for e = 1 to epochs do
          let before = Tracker.seq tracker in
          for i = 0 to cells - 1 do
            if ((i * 7) + e) mod 3 <> 2 then begin
              model.(i) <- (e * 1000) + i;
              Memsim.store64 mem (cell i) model.(i)
            end
          done;
          (* The middle epoch commits, then replays as workload: its
             write-back happens via the recovery path, under the
             tracker, so the sweep crashes mid-replay too. *)
          if e = (epochs / 2) + 1 then begin
            Snapshot.sync ~stop_after:`Commit snap;
            Snapshot.replay snap
          end
          else Snapshot.sync snap;
          let after = Tracker.seq tracker in
          log :=
            { s_before = before; s_after = after; s_cells = Array.copy model }
            :: !log
        done);
    let log = List.rev !log in
    let initial = Array.init cells (fun i -> 1000 + i) in
    let show a =
      String.concat "," (Array.to_list (Array.map string_of_int a))
    in
    let verify ~seq machine' regions' =
      let region' = find_region rid regions' in
      (* Recovery order matters: replay the snapshot log first, then
         read the (possibly just-reinstalled) cells. *)
      let snap' = Snapshot.attach machine' region' in
      if Snapshot.committed_bytes snap' <> 0 then
        Error "snapshot log still committed after recovery"
      else begin
        let block' =
          match Region.root region' "snapcells" with
          | Some a -> a
          | None -> failwith "snapcells root lost"
        in
        let actual =
          Array.init cells (fun i ->
              Memsim.load64 machine'.Machine.mem
                (Vaddr.add block' (i * stride)))
        in
        let committed =
          List.fold_left
            (fun acc ep -> if ep.s_after <= seq then ep.s_cells else acc)
            initial log
        in
        let candidates =
          committed
          ::
          (match
             List.find_opt
               (fun ep -> ep.s_before < seq && seq < ep.s_after)
               log
           with
          | Some ep -> [ ep.s_cells ]
          | None -> [])
        in
        if List.exists (fun c -> c = actual) candidates then Ok ()
        else
          Error
            (Printf.sprintf
               "epoch torn or lost: recovered [%s], expected [%s]"
               (show actual)
               (String.concat "] or [" (List.map show candidates)))
      end
    in
    { tracker; verify }
  in
  { name; expect_fail = drop_writeback; run }

(* Kvstore over the plain (snapshot) write path: batches of
   un-instrumented puts/deletes on a freelist-heap object store, each
   batch closed by a sync. The oracle is read-your-writes at epoch
   granularity — the whole batch (index, values, allocator words)
   appears atomically or not at all. *)
let snapshot_kv_scenario ?(epochs = 5) ?(granularity = Snapshot.Line) repr =
  let name =
    Printf.sprintf "snapshot-kv/%s/%s" (Repr.to_string repr)
      (Snapshot.granularity_to_string granularity)
  in
  let run ~metrics ~seed =
    let machine, rid, region = boot ~metrics ~seed in
    if repr = Repr.Based then Machine.set_based_region machine rid;
    (* The flush-free freelist heap: under snapshot durability nothing
       but sync may move the durable cut (palloc's logged allocations
       would persist allocator state mid-epoch, docs/SNAPSHOT.md). *)
    (* The snapshot's meta/log pages must be carved out before the
       object store claims the whole remaining region as its heap. *)
    let snap = Snapshot.create machine region ~granularity () in
    let os = Objstore.create machine region ~heap:`Freelist () in
    let kv = Kvstore.create os ~repr ~name:"kv" ~buckets:8 ~write_path:`Plain () in
    let model = ref [] in
    for k = 1 to 3 do
      let v = Printf.sprintf "init-%d" k in
      Kvstore.put kv ~key:k v;
      model := model_put k v !model
    done;
    Snapshot.sync snap;
    let tracker = Tracker.attach machine in
    Tracker.arm tracker;
    let initial = !model in
    let log = ref [] in
    for e = 1 to epochs do
      let before = Tracker.seq tracker in
      for j = 0 to 2 do
        let key = (((e * 3) + j) mod 5) + 1 in
        if (e + j) mod 4 = 0 then begin
          ignore (Kvstore.delete kv ~key);
          model := model_del key !model
        end
        else begin
          let v = Printf.sprintf "v%d-%d" e key in
          Kvstore.put kv ~key v;
          model := model_put key v !model
        end
      done;
      Snapshot.sync snap;
      let after = Tracker.seq tracker in
      log := (before, after, canon !model) :: !log
    done;
    let log = List.rev !log in
    let universe = [ 1; 2; 3; 4; 5; 6 ] in
    let verify ~seq machine' regions' =
      let region' = find_region rid regions' in
      if repr = Repr.Based then
        Machine.set_based_region machine' (Region.rid region');
      (* Replay first: the object store's metadata and heap words are
         themselves part of the epoch being reinstalled. *)
      let snap' = Snapshot.attach machine' region' in
      if Snapshot.committed_bytes snap' <> 0 then
        Error "snapshot log still committed after recovery"
      else begin
        let os' = Objstore.attach machine' region' in
        let kv' = Kvstore.attach os' ~write_path:`Plain ~repr ~name:"kv" in
        let committed =
          List.fold_left
            (fun acc (_, after, state) -> if after <= seq then state else acc)
            (canon initial) log
        in
        let candidates =
          committed
          ::
          (match
             List.find_opt (fun (b, a, _) -> b < seq && seq < a) log
           with
          | Some (_, _, state) -> [ state ]
          | None -> [])
        in
        let actual =
          List.filter_map
            (fun k ->
              match Kvstore.get kv' ~key:k with
              | Some v -> Some (k, v)
              | None -> None)
            universe
          |> canon
        in
        if List.mem actual candidates then Ok ()
        else
          Error
            (Printf.sprintf
               "epoch read-your-writes: recovered %s, expected %s"
               (describe_map actual)
               (String.concat " or " (List.map describe_map candidates)))
      end
    in
    { tracker; verify }
  in
  { name; expect_fail = false; run }

(* {1 Catalogues} *)

let paper_structures =
  [ Instance.List; Instance.Btree; Instance.Hashset; Instance.Trie ]

let pi_reprs =
  [
    Repr.Off_holder;
    Repr.Riv;
    Repr.Fat;
    Repr.Fat_cached;
    Repr.Based;
    Repr.Packed_fat;
    Repr.Hw_oid;
  ]

let core_reprs = [ Repr.Off_holder; Repr.Riv; Repr.Fat_cached ]

let defaults () =
  List.concat_map
    (fun s -> List.map (fun r -> structure_scenario s r) pi_reprs)
    paper_structures
  @ List.map (fun r -> kv_scenario r) core_reprs
  @ List.concat_map
      (fun s -> List.map (fun r -> durable_scenario s r) durable_reprs)
      durable_structures
  @ [
      tx_cells_scenario ();
      swizzle_window_scenario ();
      structure_scenario ~pinned_dependent:true Instance.List Repr.Normal;
      alloc_scenario ();
      snapshot_cells_scenario ~granularity:Snapshot.Line ();
      snapshot_cells_scenario ~granularity:Snapshot.Page ();
      snapshot_kv_scenario Repr.Riv;
      snapshot_kv_scenario Repr.Off_holder;
    ]

let selftests () =
  [
    structure_scenario ~fence:false Instance.List Repr.Riv;
    alloc_leak_selftest ();
    durable_scenario ~drop_flushes:true Instance.Hashset Repr.Riv;
    durable_scenario ~drop_flushes:true Instance.Btree Repr.Off_holder;
    snapshot_cells_scenario ~drop_writeback:true ();
  ]
