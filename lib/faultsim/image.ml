(* Durability state machine for one tracked region.

   Three byte populations, mirroring the cachesim's line granularity:
   - durable: in [image]; only fences move bytes here;
   - staged: flushed out of the cache but not yet fenced — a full-line
     snapshot taken at flush time waits in [staged];
   - dirty: stored but neither flushed nor fenced; tracked as per-line
     byte masks (store events fire before the data lands in the
     simulated memory, so only positions are known here — values are
     captured by the line snapshot when a flush arrives).

   Deliberate simplification (documented in docs/FAULTSIM.md): cache
   evictions are NOT treated as durable. A dirty line evicted from L3
   does reach NVM in the timing model, but whether it does by a given
   crash point depends on cache pressure; treating evictions as
   non-durable makes the durable image the guaranteed-persisted lower
   bound, which is the set recovery may rely on. *)

type t = {
  base : int;
  size : int;
  line : int;
  image : Bytes.t;
  dirty : (int, Bytes.t) Hashtbl.t; (* line start -> byte presence mask *)
  staged : (int, Bytes.t * int) Hashtbl.t; (* snap lo -> (snap, fresh bytes) *)
  mutable durable_total : int;
}

let create ~base ~size ~line ~init =
  if Bytes.length init <> size then invalid_arg "Image.create";
  {
    base;
    size;
    line;
    image = Bytes.copy init;
    dirty = Hashtbl.create 64;
    staged = Hashtbl.create 64;
    durable_total = 0;
  }

let base t = t.base
let size t = t.size
let image t = Bytes.copy t.image
let durable_bytes t = t.durable_total

let mask_count m =
  Bytes.fold_left (fun acc c -> if c = '\000' then acc else acc + 1) 0 m

let volatile_bytes t =
  Hashtbl.fold (fun _ m acc -> acc + mask_count m) t.dirty 0
  + Hashtbl.fold (fun _ (_, c) acc -> acc + c) t.staged 0

let pending_lines t =
  let lines = Hashtbl.create 16 in
  Hashtbl.iter (fun l _ -> Hashtbl.replace lines l ()) t.dirty;
  Hashtbl.iter
    (fun lo _ -> Hashtbl.replace lines (lo land lnot (t.line - 1)) ())
    t.staged;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) lines [])

let reset_volatile t =
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.staged

let apply t (e : Events.t) =
  match e with
  | Events.Store { addr; size } ->
      let lo = max addr t.base and hi = min (addr + size) (t.base + t.size) in
      let a = ref lo in
      while !a < hi do
        let lstart = !a land lnot (t.line - 1) in
        let m =
          match Hashtbl.find_opt t.dirty lstart with
          | Some m -> m
          | None ->
              let m = Bytes.make t.line '\000' in
              Hashtbl.add t.dirty lstart m;
              m
        in
        let stop = min hi (lstart + t.line) in
        for b = !a to stop - 1 do
          Bytes.set m (b - lstart) '\001'
        done;
        a := stop
      done
  | Events.Flush { lo; snap } ->
      let len = Bytes.length snap in
      if lo < t.base + t.size && lo + len > t.base then begin
        let lstart = lo land lnot (t.line - 1) in
        let fresh =
          match Hashtbl.find_opt t.dirty lstart with
          | Some m ->
              Hashtbl.remove t.dirty lstart;
              mask_count m
          | None -> 0
        in
        let carried =
          match Hashtbl.find_opt t.staged lo with
          | Some (_, c) -> c
          | None -> 0
        in
        (* Newer snapshot supersedes an unfenced older one of the line. *)
        Hashtbl.replace t.staged lo (Bytes.copy snap, carried + fresh)
      end
  | Events.Fence ->
      Hashtbl.iter
        (fun lo (snap, c) ->
          Bytes.blit snap 0 t.image (lo - t.base) (Bytes.length snap);
          t.durable_total <- t.durable_total + c)
        t.staged;
      Hashtbl.reset t.staged
