module Machine = Core.Machine
module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Timing_config = Nvmpi_cachesim.Timing_config
module Manager = Nvmpi_nvregion.Manager
module Region = Nvmpi_nvregion.Region
module Metrics = Nvmpi_obs.Metrics
module Rid = Nvmpi_addr.Kinds.Rid
module Vaddr = Nvmpi_addr.Kinds.Vaddr

type tracked = {
  rid : Rid.t;
  base : int;
  size : int;
  init : Bytes.t;
  state : Image.t; (* live durable state, folded as events arrive *)
}

type t = {
  machine : Machine.t;
  line : int;
  mutable armed : bool;
  mutable tracked : tracked list;
  mutable buf : Events.t array;
  mutable len : int;
  c_stores : int ref;
  c_flushes : int ref;
  c_fences : int ref;
}

let push t e =
  if t.len = Array.length t.buf then begin
    let nb = Array.make (max 256 (2 * t.len)) Events.Fence in
    Array.blit t.buf 0 nb 0 t.len;
    t.buf <- nb
  end;
  t.buf.(t.len) <- e;
  t.len <- t.len + 1

let overlaps tr ~lo ~hi = lo < tr.base + tr.size && hi > tr.base

let on_store t addr size =
  if List.exists (fun tr -> overlaps tr ~lo:addr ~hi:(addr + size)) t.tracked
  then begin
    let e = Events.Store { addr; size } in
    push t e;
    incr t.c_stores;
    List.iter (fun tr -> Image.apply tr.state e) t.tracked
  end

let on_flush t addr =
  let line_lo = addr land lnot (t.line - 1) in
  match
    List.find_opt
      (fun tr -> overlaps tr ~lo:line_lo ~hi:(line_lo + t.line))
      t.tracked
  with
  | None -> ()
  | Some tr ->
      let lo = max line_lo tr.base in
      let hi = min (line_lo + t.line) (tr.base + tr.size) in
      (* Capture what the line holds as the clwb retires: stores have
         already landed in the simulated memory by the time a flush can
         reference them. The debug port keeps the capture unobserved. *)
      let snap =
        Memsim.peek_bytes t.machine.Machine.mem ~addr:(Vaddr.v lo)
          ~len:(hi - lo)
      in
      let e = Events.Flush { lo; snap } in
      push t e;
      incr t.c_flushes;
      List.iter (fun tr -> Image.apply tr.state e) t.tracked

let on_fence t =
  if t.tracked <> [] then begin
    push t Events.Fence;
    incr t.c_fences;
    List.iter (fun tr -> Image.apply tr.state Events.Fence) t.tracked
  end

let apply_crash t =
  List.iter
    (fun tr ->
      Memsim.poke_bytes t.machine.Machine.mem ~addr:(Vaddr.v tr.base)
        (Image.image tr.state);
      Image.reset_volatile tr.state)
    t.tracked;
  Timing.invalidate_caches t.machine.Machine.timing

let attach machine =
  let line =
    1 lsl (Timing.cfg machine.Machine.timing).Timing_config.line_bits
  in
  let metrics = machine.Machine.metrics in
  let t =
    {
      machine;
      line;
      armed = false;
      tracked = [];
      buf = [||];
      len = 0;
      c_stores = Metrics.counter metrics "faultsim.events.stores";
      c_flushes = Metrics.counter metrics "faultsim.events.flushes";
      c_fences = Metrics.counter metrics "faultsim.events.fences";
    }
  in
  Memsim.add_observer machine.Machine.mem (fun ~write ~addr ~size ->
      if t.armed && write then on_store t addr size);
  Timing.set_persist_hook machine.Machine.timing
    (Some
       (function
       | Timing.Flushed addr -> if t.armed then on_flush t addr
       | Timing.Fenced -> if t.armed then on_fence t));
  machine.Machine.crash_hook <- Some (fun () -> apply_crash t);
  t

let arm t =
  let regions = Manager.open_regions t.machine.Machine.manager in
  if regions = [] then invalid_arg "Tracker.arm: no open regions";
  t.tracked <-
    List.map
      (fun r ->
        let base = (Region.base r :> int) in
        let size = Region.size r in
        let init =
          Memsim.peek_bytes t.machine.Machine.mem ~addr:(Region.base r)
            ~len:size
        in
        { rid = Region.rid r; base; size; init; state = Image.create ~base ~size ~line:t.line ~init })
      regions;
  t.len <- 0;
  t.armed <- true

let disarm t = t.armed <- false
let armed t = t.armed
let machine t = t.machine
let line_size t = t.line
let seq t = t.len
let event t i = if i < 0 || i >= t.len then invalid_arg "Tracker.event" else t.buf.(i)
let events t = Array.sub t.buf 0 t.len

let event_window t ~upto ~width =
  let lo = max 0 (upto - width) in
  let rec collect i acc =
    if i < lo then acc else collect (i - 1) ((i, t.buf.(i)) :: acc)
  in
  collect (min (t.len - 1) (upto - 1)) []

let tracked t =
  List.map (fun tr -> (tr.rid, tr.base, tr.size, tr.init)) t.tracked

let crash_image t rid =
  match List.find_opt (fun tr -> tr.rid = rid) t.tracked with
  | Some tr -> Image.image tr.state
  | None -> invalid_arg "Tracker.crash_image: region not tracked"

let durable_bytes t =
  List.fold_left (fun acc tr -> acc + Image.durable_bytes tr.state) 0 t.tracked

let volatile_bytes t =
  List.fold_left (fun acc tr -> acc + Image.volatile_bytes tr.state) 0 t.tracked

let checkpoint ?(fence = true) t =
  if not t.armed then invalid_arg "Tracker.checkpoint: not armed";
  let lines =
    List.concat_map (fun tr -> Image.pending_lines tr.state) t.tracked
  in
  List.iter
    (fun lo -> Timing.flush t.machine.Machine.timing ~addr:lo)
    (List.sort_uniq compare lines);
  if fence then Timing.fence t.machine.Machine.timing
