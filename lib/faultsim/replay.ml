module Rid = Nvmpi_addr.Kinds.Rid

type t = {
  tracker : Tracker.t;
  states : (Rid.t * Image.t) list;
  mutable pos : int;
}

let create tracker =
  let line = Tracker.line_size tracker in
  let states =
    List.map
      (fun (rid, base, size, init) ->
        (rid, Image.create ~base ~size ~line ~init))
      (Tracker.tracked tracker)
  in
  { tracker; states; pos = 0 }

let pos t = t.pos

let advance t ~upto =
  if upto < t.pos then invalid_arg "Replay.advance: cursor only moves forward";
  if upto > Tracker.seq t.tracker then invalid_arg "Replay.advance: past log end";
  while t.pos < upto do
    let e = Tracker.event t.tracker t.pos in
    List.iter (fun (_, st) -> Image.apply st e) t.states;
    t.pos <- t.pos + 1
  done

let images t =
  List.map (fun (rid, st) -> (rid, Image.size st, Image.image st)) t.states

let durable_bytes t =
  List.fold_left (fun acc (_, st) -> acc + Image.durable_bytes st) 0 t.states

let volatile_bytes t =
  List.fold_left (fun acc (_, st) -> acc + Image.volatile_bytes st) 0 t.states
