module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json

type mode = After_fences | Exhaustive | Sampled of int

let mode_to_string = function
  | After_fences -> "after-fences"
  | Exhaustive -> "exhaustive"
  | Sampled k -> Printf.sprintf "sampled-%d" k

type failure = {
  seq : int;
  detail : string;
  window : (int * Events.t) list;
}

type scenario_result = {
  name : string;
  expect_fail : bool;
  points : int;
  failures : failure list;
  durable_bytes : int;
  volatile_bytes : int;
}

type report = { seed : int; mode : mode; scenarios : scenario_result list }

let scenario_ok r =
  if r.expect_fail then r.failures <> [] else r.failures = []

let ok report = List.for_all scenario_ok report.scenarios

let crash_points tracker mode ~seed =
  let n = Tracker.seq tracker in
  let pts =
    match mode with
    | Exhaustive -> List.init (n + 1) Fun.id
    | After_fences ->
        let after_fences = ref [ 0; n ] in
        for i = 0 to n - 1 do
          match Tracker.event tracker i with
          | Events.Fence -> after_fences := (i + 1) :: !after_fences
          | _ -> ()
        done;
        !after_fences
    | Sampled k ->
        let st = Random.State.make [| seed; n; 0x5EED |] in
        let draws = List.init k (fun _ -> Random.State.int st (n + 1)) in
        0 :: n :: draws
  in
  List.sort_uniq compare pts

let run_scenario ~metrics ~seed ~mode (sc : Scenario.t) =
  let { Scenario.tracker; verify } = sc.Scenario.run ~metrics ~seed in
  (* The workload is over; stop recording so recovery machines and the
     verification itself cannot grow the log under the cursor. *)
  Tracker.disarm tracker;
  let durable_bytes = Tracker.durable_bytes tracker in
  let volatile_bytes = Tracker.volatile_bytes tracker in
  let points = crash_points tracker mode ~seed in
  let cursor = Replay.create tracker in
  let c_points = Metrics.counter metrics "faultsim.crash_points" in
  let c_pass = Metrics.counter metrics "faultsim.schedules.passed" in
  let c_fail = Metrics.counter metrics "faultsim.schedules.failed" in
  let failures =
    List.filter_map
      (fun p ->
        Replay.advance cursor ~upto:p;
        incr c_points;
        let recovery_seed = (seed * 1_000_003) + p in
        let outcome =
          try
            let machine', regions' =
              Recovery.boot ~seed:recovery_seed (Replay.images cursor)
            in
            verify ~seq:p machine' regions'
          with e -> Error ("recovery raised " ^ Printexc.to_string e)
        in
        match outcome with
        | Ok () ->
            incr c_pass;
            None
        | Error detail ->
            incr c_fail;
            Some
              {
                seq = p;
                detail;
                window = Tracker.event_window tracker ~upto:p ~width:6;
              })
      points
  in
  {
    name = sc.Scenario.name;
    expect_fail = sc.Scenario.expect_fail;
    points = List.length points;
    failures;
    durable_bytes;
    volatile_bytes;
  }

let run ?(mode = After_fences) ~metrics ~seed scenarios =
  let scenarios =
    List.map (fun sc -> run_scenario ~metrics ~seed ~mode sc) scenarios
  in
  let durable =
    List.fold_left (fun a r -> a + r.durable_bytes) 0 scenarios
  in
  let volatile =
    List.fold_left (fun a r -> a + r.volatile_bytes) 0 scenarios
  in
  Metrics.incr ~by:durable metrics "faultsim.bytes.durable";
  Metrics.incr ~by:volatile metrics "faultsim.bytes.volatile";
  { seed; mode; scenarios }

(* {1 Reporting} *)

let json_of_failure f =
  Json.Obj
    [
      ("seq", Json.Int f.seq);
      ("detail", Json.String f.detail);
      ( "window",
        Json.List
          (List.map
             (fun (i, e) ->
               Json.Obj
                 [
                   ("seq", Json.Int i);
                   ("event", Json.String (Events.to_string e));
                 ])
             f.window) );
    ]

let json_of_scenario r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("expect_fail", Json.Bool r.expect_fail);
      ("ok", Json.Bool (scenario_ok r));
      ("crash_points", Json.Int r.points);
      ("violations", Json.Int (List.length r.failures));
      ("durable_bytes", Json.Int r.durable_bytes);
      ("volatile_bytes", Json.Int r.volatile_bytes);
      ("failures", Json.List (List.map json_of_failure r.failures));
    ]

let json_of_report report =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("kind", Json.String "faultsim");
      ("seed", Json.Int report.seed);
      ("mode", Json.String (mode_to_string report.mode));
      ("ok", Json.Bool (ok report));
      ( "total_crash_points",
        Json.Int
          (List.fold_left (fun a r -> a + r.points) 0 report.scenarios) );
      ("scenarios", Json.List (List.map json_of_scenario report.scenarios));
    ]

let pp_failure ppf f =
  Format.fprintf ppf "@[<v 2>at crash point %d: %s" f.seq f.detail;
  List.iter
    (fun (i, e) -> Format.fprintf ppf "@,  [%d] %s" i (Events.to_string e))
    f.window;
  Format.fprintf ppf "@]"

let pp_report ppf report =
  Format.fprintf ppf "faultsim sweep: seed=%d mode=%s@." report.seed
    (mode_to_string report.mode);
  List.iter
    (fun r ->
      let verdict =
        if scenario_ok r then "ok"
        else if r.expect_fail then "FAIL (expected violations, saw none)"
        else "FAIL"
      in
      Format.fprintf ppf "  %-42s %4d points  %3d violations  %s%s@." r.name
        r.points
        (List.length r.failures)
        verdict
        (if r.expect_fail && r.failures <> [] then " (expected)" else "");
      if not (scenario_ok r) then
        List.iter (fun f -> Format.fprintf ppf "    %a@." pp_failure f)
          r.failures)
    report.scenarios;
  let total = List.fold_left (fun a r -> a + r.points) 0 report.scenarios in
  Format.fprintf ppf "  total: %d scenarios, %d crash points — %s@."
    (List.length report.scenarios)
    total
    (if ok report then "all invariants hold" else "INVARIANT VIOLATIONS")
