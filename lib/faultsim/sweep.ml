module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json

type mode = After_fences | Exhaustive | Sampled of int

let mode_to_string = function
  | After_fences -> "after-fences"
  | Exhaustive -> "exhaustive"
  | Sampled k -> Printf.sprintf "sampled-%d" k

type failure = {
  seq : int;
  detail : string;
  window : (int * Events.t) list;
}

type scenario_result = {
  name : string;
  expect_fail : bool;
  points : int;
  failures : failure list;
  durable_bytes : int;
  volatile_bytes : int;
  wall_ns : int;
}

type report = { seed : int; mode : mode; scenarios : scenario_result list }

let scenario_ok r =
  if r.expect_fail then r.failures <> [] else r.failures = []

let ok report = List.for_all scenario_ok report.scenarios

let crash_points tracker mode ~seed =
  let n = Tracker.seq tracker in
  let pts =
    match mode with
    | Exhaustive -> List.init (n + 1) Fun.id
    | After_fences ->
        let after_fences = ref [ 0; n ] in
        for i = 0 to n - 1 do
          match Tracker.event tracker i with
          | Events.Fence -> after_fences := (i + 1) :: !after_fences
          | _ -> ()
        done;
        !after_fences
    | Sampled k ->
        let st = Random.State.make [| seed; n; 0x5EED |] in
        let draws = List.init k (fun _ -> Random.State.int st (n + 1)) in
        0 :: n :: draws
  in
  List.sort_uniq compare pts

(* Evaluate an ascending run of crash points with a private cursor. Pure
   with respect to shared state: the tracker is disarmed (read-only), the
   cursor replays into images it owns, and every recovery machine gets a
   private metrics registry — which is what lets chunks of points run on
   separate domains and still merge byte-identically. *)
let eval_points ~tracker ~verify ~seed points =
  let cursor = Replay.create tracker in
  List.map
    (fun p ->
      Replay.advance cursor ~upto:p;
      let recovery_seed = (seed * 1_000_003) + p in
      let outcome =
        try
          let machine', regions' =
            Recovery.boot ~seed:recovery_seed (Replay.images cursor)
          in
          verify ~seq:p machine' regions'
        with e -> Error ("recovery raised " ^ Printexc.to_string e)
      in
      (p, outcome))
    points

(* Fold a scenario's evaluated outcomes (in ascending point order) into
   the shared registry and a result record. Shared-registry counters
   move only here, on the calling domain — identical totals for any
   [jobs]. *)
let merge_scenario ~metrics ~tracker (sc : Scenario.t) ~points ~outcomes
    ~wall_ns =
  let c_points = Metrics.counter metrics "faultsim.crash_points" in
  let c_pass = Metrics.counter metrics "faultsim.schedules.passed" in
  let c_fail = Metrics.counter metrics "faultsim.schedules.failed" in
  let failures =
    List.filter_map
      (fun (p, outcome) ->
        incr c_points;
        match outcome with
        | Ok () ->
            incr c_pass;
            None
        | Error detail ->
            incr c_fail;
            Some
              {
                seq = p;
                detail;
                window = Tracker.event_window tracker ~upto:p ~width:6;
              })
      outcomes
  in
  {
    name = sc.Scenario.name;
    expect_fail = sc.Scenario.expect_fail;
    points = List.length points;
    failures;
    durable_bytes = Tracker.durable_bytes tracker;
    volatile_bytes = Tracker.volatile_bytes tracker;
    wall_ns;
  }

let run_scenario ?(jobs = 1) ~metrics ~seed ~mode (sc : Scenario.t) =
  let t0 = Nvmpi_parsweep.Wall.now_ns () in
  let { Scenario.tracker; verify } = sc.Scenario.run ~metrics ~seed in
  (* The workload is over; stop recording so recovery machines and the
     verification itself cannot grow the log under the cursor. *)
  Tracker.disarm tracker;
  let points = crash_points tracker mode ~seed in
  let outcomes =
    if jobs <= 1 then eval_points ~tracker ~verify ~seed points
    else
      Nvmpi_parsweep.Pool.chunks ~jobs points
      |> List.map (fun chunk () -> eval_points ~tracker ~verify ~seed chunk)
      |> Nvmpi_parsweep.Pool.map ~jobs
      |> List.concat
  in
  merge_scenario ~metrics ~tracker sc ~points ~outcomes
    ~wall_ns:(Nvmpi_parsweep.Wall.now_ns () - t0)

let rec take_drop n lst =
  if n = 0 then ([], lst)
  else
    match lst with
    | [] -> ([], [])
    | x :: rest ->
        let taken, rest = take_drop (n - 1) rest in
        (x :: taken, rest)

let run ?(jobs = 1) ?(mode = After_fences) ~metrics ~seed scenarios =
  let scenarios =
    if jobs <= 1 then
      List.map (fun sc -> run_scenario ~metrics ~seed ~mode sc) scenarios
    else begin
      (* Workloads feed the shared registry: run them serially, in
         order. Chunk evaluation is where the time goes, so every chunk
         of every scenario is submitted to ONE pool — domains are
         spawned once per sweep, not once per scenario. *)
      let prepared =
        List.map
          (fun sc ->
            let prep, workload_ns =
              Nvmpi_parsweep.Wall.time (fun () ->
                  let { Scenario.tracker; verify } =
                    sc.Scenario.run ~metrics ~seed
                  in
                  Tracker.disarm tracker;
                  let points = crash_points tracker mode ~seed in
                  (tracker, verify, points,
                   Nvmpi_parsweep.Pool.chunks ~jobs points))
            in
            (sc, prep, workload_ns))
          scenarios
      in
      let tasks =
        List.concat_map
          (fun (_, (tracker, verify, _, chunks), _) ->
            List.map
              (fun chunk () ->
                Nvmpi_parsweep.Wall.time (fun () ->
                    eval_points ~tracker ~verify ~seed chunk))
              chunks)
          prepared
      in
      let evaluated = ref (Nvmpi_parsweep.Pool.map ~jobs tasks) in
      List.map
        (fun (sc, (tracker, _, points, chunks), workload_ns) ->
          let mine, rest = take_drop (List.length chunks) !evaluated in
          evaluated := rest;
          let outcomes = List.concat_map fst mine in
          (* Under a parallel sweep, a scenario's wall_ns is its serial
             workload time plus the summed (CPU-like) time of its
             chunks, which overlap other scenarios' chunks on the
             pool. *)
          let eval_ns = List.fold_left (fun a (_, ns) -> a + ns) 0 mine in
          merge_scenario ~metrics ~tracker sc ~points ~outcomes
            ~wall_ns:(workload_ns + eval_ns))
        prepared
    end
  in
  let durable =
    List.fold_left (fun a r -> a + r.durable_bytes) 0 scenarios
  in
  let volatile =
    List.fold_left (fun a r -> a + r.volatile_bytes) 0 scenarios
  in
  Metrics.incr ~by:durable metrics "faultsim.bytes.durable";
  Metrics.incr ~by:volatile metrics "faultsim.bytes.volatile";
  { seed; mode; scenarios }

(* {1 Reporting} *)

let json_of_failure f =
  Json.Obj
    [
      ("seq", Json.Int f.seq);
      ("detail", Json.String f.detail);
      ( "window",
        Json.List
          (List.map
             (fun (i, e) ->
               Json.Obj
                 [
                   ("seq", Json.Int i);
                   ("event", Json.String (Events.to_string e));
                 ])
             f.window) );
    ]

let json_of_scenario r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("expect_fail", Json.Bool r.expect_fail);
      ("ok", Json.Bool (scenario_ok r));
      ("crash_points", Json.Int r.points);
      ("violations", Json.Int (List.length r.failures));
      ("durable_bytes", Json.Int r.durable_bytes);
      ("volatile_bytes", Json.Int r.volatile_bytes);
      ("failures", Json.List (List.map json_of_failure r.failures));
    ]

let json_of_report report =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("kind", Json.String "faultsim");
      ("seed", Json.Int report.seed);
      ("mode", Json.String (mode_to_string report.mode));
      ("ok", Json.Bool (ok report));
      ( "total_crash_points",
        Json.Int
          (List.fold_left (fun a r -> a + r.points) 0 report.scenarios) );
      ("scenarios", Json.List (List.map json_of_scenario report.scenarios));
    ]

(* Host wall-clock lives in its own document: the sweep report above is
   byte-identical across hosts and jobs values, this one never is. *)
let wall_json_of_report ~jobs report =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("kind", Json.String "faultsim-wall");
      ("seed", Json.Int report.seed);
      ("mode", Json.String (mode_to_string report.mode));
      ("jobs", Json.Int jobs);
      ( "total_ns",
        Json.Int
          (List.fold_left (fun a r -> a + r.wall_ns) 0 report.scenarios) );
      ( "scenarios",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.String r.name);
                   ("wall_ns", Json.Int r.wall_ns);
                 ])
             report.scenarios) );
    ]

let pp_failure ppf f =
  Format.fprintf ppf "@[<v 2>at crash point %d: %s" f.seq f.detail;
  List.iter
    (fun (i, e) -> Format.fprintf ppf "@,  [%d] %s" i (Events.to_string e))
    f.window;
  Format.fprintf ppf "@]"

let pp_report ppf report =
  Format.fprintf ppf "faultsim sweep: seed=%d mode=%s@." report.seed
    (mode_to_string report.mode);
  List.iter
    (fun r ->
      let verdict =
        if scenario_ok r then "ok"
        else if r.expect_fail then "FAIL (expected violations, saw none)"
        else "FAIL"
      in
      Format.fprintf ppf "  %-42s %4d points  %3d violations  %s%s@." r.name
        r.points
        (List.length r.failures)
        verdict
        (if r.expect_fail && r.failures <> [] then " (expected)" else "");
      if not (scenario_ok r) then
        List.iter (fun f -> Format.fprintf ppf "    %a@." pp_failure f)
          r.failures)
    report.scenarios;
  let total = List.fold_left (fun a r -> a + r.points) 0 report.scenarios in
  Format.fprintf ppf "  total: %d scenarios, %d crash points — %s@."
    (List.length report.scenarios)
    total
    (if ok report then "all invariants hold" else "INVARIANT VIOLATIONS")
