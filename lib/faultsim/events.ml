type t =
  | Store of { addr : int; size : int }
  | Flush of { lo : int; snap : Bytes.t }
  | Fence

let pp ppf = function
  | Store { addr; size } -> Format.fprintf ppf "store 0x%x+%d" addr size
  | Flush { lo; snap } ->
      Format.fprintf ppf "flush 0x%x (%dB)" lo (Bytes.length snap)
  | Fence -> Format.fprintf ppf "fence"

let to_string e = Format.asprintf "%a" pp e
