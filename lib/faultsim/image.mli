(** The durability state machine for one tracked region.

    Folding {!Events.t} entries (in log order) over an instance keeps
    three byte populations apart, at the cachesim's line granularity:

    - {e durable} — would survive a power failure: the region contents at
      arm time, plus every line snapshot whose flush was followed by a
      fence;
    - {e staged} — flushed out of the cache but not yet fenced: a
      full-line snapshot captured at flush time, made durable by the next
      {!Events.Fence};
    - {e dirty} — stored but not flushed: lost at a crash.

    Cache evictions are deliberately not modelled as durable — the image
    is the {e guaranteed}-persisted lower bound (see docs/FAULTSIM.md). *)

type t

val create : base:int -> size:int -> line:int -> init:Bytes.t -> t
(** [init] (the region contents when tracking was armed) is the initial
    durable image; [line] is the cache-line size in bytes. *)

val apply : t -> Events.t -> unit
(** Folds one event. Events outside [[base, base+size)] are ignored. *)

val image : t -> Bytes.t
(** A copy of the current durable image. *)

val base : t -> int
val size : t -> int

val durable_bytes : t -> int
(** Cumulative count of bytes made durable by fences since creation. *)

val volatile_bytes : t -> int
(** Bytes currently dirty or staged — what a crash right now loses. *)

val pending_lines : t -> int list
(** Line start addresses with dirty or staged (unfenced) bytes, sorted.
    Flushing exactly these and fencing makes the live state durable. *)

val reset_volatile : t -> unit
(** Drops all dirty/staged state (the crash happened; nothing volatile
    survives). The durable image is unchanged. *)
