(** Recoverable size-class persistent-memory allocator.

    A segregated-fit heap over one contiguous NVM range [\[lo, hi)]:
    requests up to {!max_small} bytes are served from per-class free
    lists carved out of slabs; larger requests go through a coalescing
    first-fit path like {!Nvmpi_alloc.Freelist}. Every persistent field
    — class heads, block headers, the operation log, the root cells —
    is an offset from [lo], so the heap is position independent: the
    range can be closed and re-attached at any base.

    Durability discipline (docs/ALLOC.md): the per-block state words
    and the single-slot operation log are persisted with explicit
    clwb+fence ordering; free-list {e links} are volatile by design.
    After a crash, {!recover} resolves the pending logged operation
    (allocations roll back, frees roll forward) and rebuilds every free
    list from a physical sweep of the block headers, so no crash point
    can leak a block that was being handed out through a root cell,
    map one byte into two blocks, or leave a root cell pointing at
    unbacked bytes. *)

type t

exception Out_of_memory of { requested : int; free : int }
exception Corrupted of string

val class_sizes : int array
(** Small size classes, ascending; requests above the largest go
    through the large (coalescing) path. *)

val max_small : int
(** Largest small-class payload ([class_sizes] last entry). *)

val superblock_bytes : int
(** Bytes reserved at [lo] for the superblock (heads, log, roots). *)

val roots : int
(** Number of root cells in the superblock (see {!alloc_into}). *)

val min_range : int
(** Smallest supported [hi - lo]. *)

val is_formatted : Nvmpi_memsim.Memsim.t -> lo:Nvmpi_addr.Kinds.Vaddr.t -> bool
(** Does the range start with a palloc superblock magic? Used by
    embedders (the object store) to tell a palloc heap from a legacy
    freelist heap when attaching. *)

val init :
  mem:Nvmpi_memsim.Memsim.t ->
  timing:Nvmpi_cachesim.Timing.t ->
  metrics:Nvmpi_obs.Metrics.t ->
  lo:Nvmpi_addr.Kinds.Vaddr.t ->
  hi:Nvmpi_addr.Kinds.Vaddr.t ->
  t
(** Format [\[lo, hi)] as an empty heap (durably: the superblock and
    the initial free-block header are flushed and fenced). *)

val attach :
  mem:Nvmpi_memsim.Memsim.t ->
  timing:Nvmpi_cachesim.Timing.t ->
  metrics:Nvmpi_obs.Metrics.t ->
  lo:Nvmpi_addr.Kinds.Vaddr.t ->
  hi:Nvmpi_addr.Kinds.Vaddr.t ->
  t
(** Re-open a cleanly closed heap, possibly at a different base. Trusts
    the persisted free lists; for a post-crash image use {!recover}. *)

val recover :
  mem:Nvmpi_memsim.Memsim.t ->
  timing:Nvmpi_cachesim.Timing.t ->
  metrics:Nvmpi_obs.Metrics.t ->
  lo:Nvmpi_addr.Kinds.Vaddr.t ->
  hi:Nvmpi_addr.Kinds.Vaddr.t ->
  t
(** Post-crash attach: resolve the pending logged operation, then
    rebuild every free list from a physical sweep of the block
    headers. Idempotent, and also valid on a clean image. *)

val alloc : t -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** Allocate [n] bytes; returns the payload address. The allocation is
    durable when [alloc] returns, but nothing persistent references it
    yet — a crash before the caller durably publishes the address
    leaks the block (use {!alloc_into} when that matters). *)

val free : t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Release a block by its payload address. Detects double frees and
    addresses that are not block payloads ({!Corrupted}). *)

val alloc_into : t -> root:int -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** Allocate and atomically publish the payload offset into root cell
    [root] (0-based, < {!roots}): after any crash, either the root
    holds the new block or the allocation never happened — never a
    leaked block, never a dangling root. *)

val free_from : t -> root:int -> unit
(** Atomically free the block a root cell references and clear the
    cell. No-op raises {!Corrupted} if the cell is empty. *)

val root_get : t -> int -> int
(** Current payload offset held by a root cell (0 = empty). *)

val root_addr : t -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** Absolute address of a root cell itself. *)

val usable_size : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
(** Payload bytes actually owned by an allocated block. *)

val payload_of_offset : t -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** Absolute address of a payload offset (bounds-checked). *)

val free_bytes : t -> int
(** Payload bytes currently on free lists (small + large). *)

val frag_bytes : t -> int
(** Free payload bytes held captive inside slabs: available only to
    their own size class, never to the large path (slabs are not
    retired). Exposed as the [alloc.frag_bytes] gauge. *)

val block_count : t -> int * int
(** [(allocated, free)] block counts over small and large blocks. *)

val allocated_payloads : t -> int list
(** Payload offsets of every allocated block, ascending — the
    reachability side of the faultsim leak/double-map oracles. *)

val iter_blocks :
  t ->
  (addr:Nvmpi_addr.Kinds.Vaddr.t -> size:int -> free:bool -> unit) -> unit
(** Physical sweep over every small and large block (slab containers
    are walked into, not reported themselves). *)

val check : t -> unit
(** Full invariant check: headers tile the range, every tag and state
    word is sane, class lists hold exactly the free small blocks of
    their class, the large list is address-ordered with no adjacent
    free blocks, no list cycles, the log is idle, and every non-empty
    root cell references an allocated payload. Raises {!Corrupted}. *)
