module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Timing_config = Nvmpi_cachesim.Timing_config
module Metrics = Nvmpi_obs.Metrics
module Bitops = Nvmpi_addr.Bitops
module Vaddr = Nvmpi_addr.Kinds.Vaddr

(* Recoverable size-class allocator. Every persistent link or field is
   an offset from [lo] (0 = null: nothing lives at offset 0, the
   superblock magic does), so the heap is position independent, like
   {!Nvmpi_alloc.Freelist}.

   What is durable and what is not (docs/ALLOC.md):
   - durable, with explicit clwb+fence ordering: the per-block state
     (large-block header tags/sizes, small-block state words), the
     single-slot operation log, and the root cells;
   - volatile by design: the free-list links and heads. Recovery never
     reads them — {!recover} rebuilds every list from a physical sweep
     of the block headers — so ordinary list surgery needs no flushes.

   Each mutating operation follows the commit-record discipline the
   object store's undo log uses: write the log payload, flush, fence;
   write the log state word, flush, fence; apply the effects, flush,
   fence; clear the state word, flush, fence. A crash with the log
   armed rolls allocations back and frees forward; either way the
   effects are a consistent physical tiling at every intermediate
   durable state (splits publish the tail header with its own fence
   before the shrunken size, slabs format their contents before the
   tag that publishes them). *)

type t = {
  mem : Memsim.t;
  timing : Timing.t;
  lo : int;
  hi : int;
  line : int;
  mutable frag : int; (* free small payload bytes, mirrored to c_frag *)
  c_allocs : int ref;
  c_frees : int ref;
  c_splits : int ref;
  c_refills : int ref;
  c_pushes : int ref;
  c_recovered : int ref;
  c_frag : int ref;
}

exception Out_of_memory of { requested : int; free : int }
exception Corrupted of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupted s)) fmt

(* {1 Layout} *)

let magic = 0x50414C4C4F433031 land ((1 lsl 62) - 1) (* "PALLOC01" truncated *)
let version = 1
let class_sizes = [| 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]
let nclasses = Array.length class_sizes
let max_small = class_sizes.(nclasses - 1)

(* Superblock field offsets. *)
let o_magic = 0
let o_version = 8
let o_size = 16
let o_heads = 32 (* nclasses cells: payload offset of first free block *)
let o_large = o_heads + (8 * nclasses) (* header offset of first free block *)
let o_log_state = o_large + 8
let o_log_aux = o_log_state + 8
let o_log_block = o_log_aux + 8
let o_log_dest = o_log_block + 8
let roots = 16
let o_roots = o_log_dest + 8
let superblock_bytes = o_roots + (8 * roots)
let min_range = 512

(* Large-block headers: 16 bytes, [size | tag], sizes include the
   header and are multiples of 16. *)
let header_bytes = 16
let tag_free = 0
let tag_large = 1
let tag_slab c = 2 lor (c lsl 8)
let is_slab_tag tag = tag land 0xFF = 2
let slab_class tag = (tag lsr 8) land 0xFF
let min_large_block = 32

(* Small blocks: an 8-byte state word then the class-sized payload.
   Bit 16 marks the word as a small-block state (no large-block tag has
   it), bits 8-15 carry the class, bit 0 the allocated flag. *)
let sm_mark = 1 lsl 16
let sm_word c ~alloc = sm_mark lor (c lsl 8) lor (if alloc then 1 else 0)
let sm_is w = w land sm_mark <> 0
let sm_class w = (w lsr 8) land 0xFF
let sm_alloc w = w land 1 <> 0

(* Slabs carve ~4 KiB of payload per refill (at least 4 blocks for the
   big classes). *)
let slab_blocks c = max 4 (4096 / (8 + class_sizes.(c)))

(* Log states. *)
let op_idle = 0
let op_alloc_small = 1
let op_alloc_large = 2
let op_free_small = 3
let op_free_large = 4

let align16 n = Bitops.align_up n 16

(* {1 Accessors (offset world)} *)

let abs t off = Vaddr.v (t.lo + off)
let get64 t off = Memsim.load64 t.mem (abs t off)
let set64 t off v = Memsim.store64 t.mem (abs t off) v
let heap_size t = t.hi - t.lo
let data_lo = superblock_bytes
let data_hi t = data_lo + ((heap_size t - data_lo) land lnot 15)
let get_size t b = get64 t b
let set_size t b v = set64 t b v
let get_tag t b = get64 t (b + 8)
let set_tag t b v = set64 t (b + 8) v
let get_head t c = get64 t (o_heads + (8 * c))
let set_head t c v = set64 t (o_heads + (8 * c)) v
let get_large t = get64 t o_large
let set_large t v = set64 t o_large v
let root_cell i = o_roots + (8 * i)

(* {1 Persistence primitives} *)

let flush_range t off len =
  let first = (t.lo + off) land lnot (t.line - 1) in
  let last = (t.lo + off + len - 1) land lnot (t.line - 1) in
  let a = ref first in
  while !a <= last do
    Timing.flush t.timing ~addr:!a;
    a := !a + t.line
  done

let fence t = Timing.fence t.timing

let log_arm t ~op ~aux ~block ~dest =
  set64 t o_log_aux aux;
  set64 t o_log_block block;
  set64 t o_log_dest dest;
  flush_range t o_log_aux 24;
  fence t;
  set64 t o_log_state op;
  flush_range t o_log_state 8;
  fence t

let log_disarm t =
  set64 t o_log_state op_idle;
  flush_range t o_log_state 8;
  fence t

let gauge t = t.c_frag := t.frag

(* {1 Validation helpers} *)

let block_ok t b = b >= data_lo && b + min_large_block <= data_hi t && b land 15 = 0

let validate_block t b ctx =
  if not (block_ok t b) then corrupt "%s: bad block offset 0x%x" ctx b;
  let size = get_size t b in
  if size < min_large_block || b + size > data_hi t || size land 15 <> 0 then
    corrupt "%s: bad block size %d at 0x%x" ctx size b

(* {1 The large (coalescing first-fit) path}

   The free list is address-ordered; the link lives in the free block's
   first payload word (header + 16). *)

let get_link t b = get64 t (b + header_bytes)
let set_link t b v = set64 t (b + header_bytes) v

let set_large_link t prev v =
  if prev = 0 then set_large t v else set_link t prev v

let large_free_bytes t =
  let rec go cur acc =
    if cur = 0 then acc else go (get_link t cur) (acc + get_size t cur - header_bytes)
  in
  go (get_large t) 0

(* First fit; returns [(prev, cur)] with [prev = 0] when [cur] is the
   list head. *)
let find_fit t need =
  let rec find prev cur =
    if cur = 0 then
      raise (Out_of_memory { requested = need; free = large_free_bytes t })
    else begin
      validate_block t cur "alloc";
      if get_tag t cur <> tag_free then
        corrupt "alloc: block 0x%x on the large free list is not free" cur;
      if get_size t cur >= need then (prev, cur) else find cur (get_link t cur)
    end
  in
  find 0 (get_large t)

(* Split [b]: durably publish the tail header with its own fence before
   the shrunken size becomes durable, so a walk at any intermediate
   durable state sees either the whole block or two adjacent free
   blocks — never a size pointing into unformatted bytes. The caller's
   next group (which commits [b]'s new size and tag) provides the
   second fence. *)
let write_tail t b ~need ~size =
  let tail = b + need in
  set_size t tail (size - need);
  set_tag t tail tag_free;
  flush_range t tail header_bytes;
  fence t

(* Allocate a large block. [dest] (a superblock cell offset, 0 = none)
   is published under the same fence as the commit so the log resolves
   both together. Returns the header offset. *)
let alloc_large t n ~dest =
  let need = align16 (max n header_bytes) + header_bytes in
  let prev, b = find_fit t need in
  let size = get_size t b in
  let next = get_link t b in
  let split = size - need >= min_large_block in
  log_arm t ~op:op_alloc_large ~aux:need ~block:b ~dest;
  if split then write_tail t b ~need ~size;
  if split then set_size t b need;
  set_tag t b tag_large;
  flush_range t b header_bytes;
  if dest <> 0 then begin
    set64 t dest (b + header_bytes);
    flush_range t dest 8
  end;
  fence t;
  log_disarm t;
  (* Volatile list surgery: the tail (if any) takes [b]'s place. *)
  if split then begin
    set_link t (b + need) next;
    set_large_link t prev (b + need);
    incr t.c_splits
  end
  else set_large_link t prev next;
  incr t.c_allocs;
  b

let free_large t b ~dest =
  log_arm t ~op:op_free_large ~aux:0 ~block:b ~dest;
  set_tag t b tag_free;
  flush_range t (b + 8) 8;
  if dest <> 0 then begin
    set64 t dest 0;
    flush_range t dest 8
  end;
  fence t;
  log_disarm t;
  (* Volatile: address-ordered insert, then physical coalescing. The
     merged sizes are plain stores: any subset of them becoming durable
     (via a stray same-line flush) only grows a free block over its
     free neighbour, which the recovery sweep re-merges anyway. *)
  let rec find_spot prev cur =
    if cur = 0 || cur > b then (prev, cur) else find_spot cur (get_link t cur)
  in
  let prev, next = find_spot 0 (get_large t) in
  set_link t b next;
  set_large_link t prev b;
  if next <> 0 && b + get_size t b = next then begin
    set_size t b (get_size t b + get_size t next);
    set_link t b (get_link t next)
  end;
  if prev <> 0 && prev + get_size t prev = b then begin
    set_size t prev (get_size t prev + get_size t b);
    set_link t prev (get_link t b)
  end;
  incr t.c_frees;
  incr t.c_pushes

(* {1 The small (size-class slab) path} *)

let class_of n =
  let rec go i = if class_sizes.(i) >= n then i else go (i + 1) in
  go 0

(* Carve a fresh slab for class [c] out of the large path. No log slot
   is needed: the contents (tail header, shrunken size, every state
   word) are formatted and fenced first, and the slab tag is the single
   commit record — until its fence retires, a walk sees a free block;
   after it, a fully formatted slab. *)
let refill t c =
  let cs = class_sizes.(c) in
  let stride = 8 + cs in
  let need = align16 (header_bytes + (slab_blocks c * stride)) in
  let prev, b = find_fit t need in
  let size = get_size t b in
  let next = get_link t b in
  let split = size - need >= min_large_block in
  if split then write_tail t b ~need ~size;
  let eff = if split then need else size in
  if split then set_size t b need;
  flush_range t b 8;
  let count = (eff - header_bytes) / stride in
  for i = 0 to count - 1 do
    let w = b + header_bytes + (i * stride) in
    set64 t w (sm_word c ~alloc:false);
    flush_range t w 8
  done;
  fence t;
  set_tag t b (tag_slab c);
  flush_range t (b + 8) 8;
  fence t;
  (* Volatile: unlink from the large list, push every block (descending
     address, so the class list ascends). *)
  if split then begin
    set_link t (b + need) next;
    set_large_link t prev (b + need);
    incr t.c_splits
  end
  else set_large_link t prev next;
  for i = count - 1 downto 0 do
    let p = b + header_bytes + (i * stride) + 8 in
    set64 t p (get_head t c);
    set_head t c p
  done;
  t.frag <- t.frag + (count * cs);
  incr t.c_refills;
  t.c_pushes := !(t.c_pushes) + count

let alloc_small t c ~dest =
  if get_head t c = 0 then refill t c;
  let p = get_head t c in
  let w = p - 8 in
  log_arm t ~op:op_alloc_small ~aux:c ~block:p ~dest;
  set_head t c (get64 t p);
  set64 t w (sm_word c ~alloc:true);
  flush_range t w 8;
  if dest <> 0 then begin
    set64 t dest p;
    flush_range t dest 8
  end;
  fence t;
  log_disarm t;
  t.frag <- t.frag - class_sizes.(c);
  incr t.c_allocs;
  gauge t;
  p

let free_small t p c ~dest =
  log_arm t ~op:op_free_small ~aux:c ~block:p ~dest;
  set64 t (p - 8) (sm_word c ~alloc:false);
  flush_range t (p - 8) 8;
  if dest <> 0 then begin
    set64 t dest 0;
    flush_range t dest 8
  end;
  fence t;
  log_disarm t;
  set64 t p (get_head t c);
  set_head t c p;
  t.frag <- t.frag + class_sizes.(c);
  incr t.c_frees;
  incr t.c_pushes;
  gauge t

(* {1 Payload classification} *)

(* The word right before a payload tells the two paths apart: small
   state words carry [sm_mark]; a large block's preceding word is its
   header tag. *)
let classify t off ctx =
  if off <= data_lo || off >= data_hi t || off land 7 <> 0 then
    corrupt "%s: 0x%x is not a payload offset" ctx off;
  let w = get64 t (off - 8) in
  if sm_is w then begin
    let c = sm_class w in
    if c >= nclasses then corrupt "%s: bad class %d at 0x%x" ctx c off;
    `Small (c, sm_alloc w)
  end
  else if w = tag_large then `Large (off - header_bytes)
  else if w = tag_free then
    corrupt "%s: block 0x%x is not allocated (double free?)" ctx off
  else corrupt "%s: 0x%x is not a payload offset" ctx off

let free_off t off ~dest =
  match classify t off "free" with
  | `Small (_, false) ->
      corrupt "free: block 0x%x is not allocated (double free?)" off
  | `Small (c, true) -> free_small t off c ~dest
  | `Large b ->
      validate_block t b "free";
      free_large t b ~dest

(* {1 Public allocation API} *)

let alloc_off t n ~dest =
  if n <= 0 then invalid_arg "Palloc.alloc: non-positive size";
  if n <= max_small then alloc_small t (class_of n) ~dest
  else begin
    let b = alloc_large t n ~dest in
    b + header_bytes
  end

let alloc t n =
  let p = alloc_off t n ~dest:0 in
  gauge t;
  abs t p

let free t (payload : Vaddr.t) =
  let off = (payload :> int) - t.lo in
  free_off t off ~dest:0;
  gauge t

let check_root i ctx =
  if i < 0 || i >= roots then
    invalid_arg (Printf.sprintf "Palloc.%s: root %d out of range" ctx i)

let root_get t i =
  check_root i "root_get";
  get64 t (root_cell i)

let root_addr t i =
  check_root i "root_addr";
  abs t (root_cell i)

let alloc_into t ~root n =
  check_root root "alloc_into";
  if root_get t root <> 0 then
    invalid_arg (Printf.sprintf "Palloc.alloc_into: root %d occupied" root);
  let p = alloc_off t n ~dest:(root_cell root) in
  gauge t;
  abs t p

let free_from t ~root =
  check_root root "free_from";
  let p = root_get t root in
  if p = 0 then corrupt "free_from: root %d is empty" root;
  free_off t p ~dest:(root_cell root);
  gauge t

let usable_size t (payload : Vaddr.t) =
  let off = (payload :> int) - t.lo in
  match classify t off "usable_size" with
  | `Small (_, false) -> corrupt "usable_size: block 0x%x is not allocated" off
  | `Small (c, true) -> class_sizes.(c)
  | `Large b ->
      validate_block t b "usable_size";
      get_size t b - header_bytes

let payload_of_offset t off =
  match classify t off "payload_of_offset" with
  | `Small _ | `Large _ -> abs t off

(* {1 Physical walk} *)

(* Visit every block: [f ~off ~size ~free ~small]; [off] is the payload
   offset, [size] the usable payload bytes. *)
let walk t f =
  let hi = data_hi t in
  let b = ref data_lo in
  while !b < hi do
    validate_block t !b "walk";
    let size = get_size t !b in
    let tag = get_tag t !b in
    if tag = tag_free then f ~off:(!b + header_bytes) ~size:(size - header_bytes) ~free:true ~small:false
    else if tag = tag_large then
      f ~off:(!b + header_bytes) ~size:(size - header_bytes) ~free:false ~small:false
    else if is_slab_tag tag then begin
      let c = slab_class tag in
      if c >= nclasses then corrupt "walk: bad slab class %d at 0x%x" c !b;
      let cs = class_sizes.(c) in
      let stride = 8 + cs in
      let count = (size - header_bytes) / stride in
      for i = 0 to count - 1 do
        let w_off = !b + header_bytes + (i * stride) in
        let w = get64 t w_off in
        if not (sm_is w) || sm_class w <> c then
          corrupt "walk: bad state word 0x%x at 0x%x (slab 0x%x)" w w_off !b;
        f ~off:(w_off + 8) ~size:cs ~free:(not (sm_alloc w)) ~small:true
      done
    end
    else corrupt "walk: bad tag 0x%x at 0x%x" tag !b;
    b := !b + size
  done;
  if !b <> hi then corrupt "walk: heap walk ended at 0x%x, expected 0x%x" !b hi

let iter_blocks t f =
  walk t (fun ~off ~size ~free ~small:_ -> f ~addr:(abs t off) ~size ~free)

let free_bytes t =
  let n = ref 0 in
  walk t (fun ~off:_ ~size ~free ~small:_ -> if free then n := !n + size);
  !n

let frag_bytes t =
  let n = ref 0 in
  walk t (fun ~off:_ ~size ~free ~small -> if free && small then n := !n + size);
  !n

let block_count t =
  let a = ref 0 and f = ref 0 in
  walk t (fun ~off:_ ~size:_ ~free ~small:_ -> if free then incr f else incr a);
  (!a, !f)

let allocated_payloads t =
  let acc = ref [] in
  walk t (fun ~off ~size:_ ~free ~small:_ -> if not free then acc := off :: !acc);
  List.rev !acc

(* {1 Lifecycle} *)

let make ~mem ~timing ~metrics ~lo ~hi =
  let line = 1 lsl (Timing.cfg timing).Timing_config.line_bits in
  let c_allocs = Metrics.counter metrics "alloc.allocs" in
  let c_frees = Metrics.counter metrics "alloc.frees" in
  let c_splits = Metrics.counter metrics "alloc.splits" in
  let c_refills = Metrics.counter metrics "alloc.slab_refills" in
  let c_pushes = Metrics.counter metrics "alloc.freelist_pushes" in
  let c_recovered = Metrics.counter metrics "alloc.recovered_blocks" in
  let c_frag = Metrics.counter metrics "alloc.frag_bytes" in
  {
    mem;
    timing;
    lo;
    hi;
    line;
    frag = 0;
    c_allocs;
    c_frees;
    c_splits;
    c_refills;
    c_pushes;
    c_recovered;
    c_frag;
  }

let check_range ~lo ~hi =
  if not (Bitops.is_aligned lo 8 && Bitops.is_aligned hi 8) then
    invalid_arg "Palloc: range must be 8-aligned";
  if hi - lo < min_range then invalid_arg "Palloc: range too small"

let is_formatted mem ~lo:(lo : Vaddr.t) = Memsim.load64 mem lo = magic

let init ~mem ~timing ~metrics ~lo:(lo : Vaddr.t) ~hi:(hi : Vaddr.t) =
  let lo = (lo :> int) and hi = (hi :> int) in
  check_range ~lo ~hi;
  let t = make ~mem ~timing ~metrics ~lo ~hi in
  set64 t o_magic magic;
  set64 t o_version version;
  set64 t o_size (heap_size t);
  for c = 0 to nclasses - 1 do
    set_head t c 0
  done;
  set_large t data_lo;
  set64 t o_log_state op_idle;
  set64 t o_log_aux 0;
  set64 t o_log_block 0;
  set64 t o_log_dest 0;
  for i = 0 to roots - 1 do
    set64 t (root_cell i) 0
  done;
  set_size t data_lo (data_hi t - data_lo);
  set_tag t data_lo tag_free;
  set_link t data_lo 0;
  flush_range t 0 (superblock_bytes + header_bytes + 8);
  fence t;
  gauge t;
  t

let validate_super t ctx =
  if get64 t o_magic <> magic then corrupt "%s: bad heap magic" ctx;
  if get64 t o_version <> version then
    corrupt "%s: heap version %d, this build reads %d" ctx (get64 t o_version)
      version;
  if get64 t o_size <> heap_size t then
    corrupt "%s: heap formatted for %d bytes, attached over %d" ctx
      (get64 t o_size) (heap_size t)

let attach ~mem ~timing ~metrics ~lo:(lo : Vaddr.t) ~hi:(hi : Vaddr.t) =
  let lo = (lo :> int) and hi = (hi :> int) in
  check_range ~lo ~hi;
  let t = make ~mem ~timing ~metrics ~lo ~hi in
  validate_super t "attach";
  if get64 t o_log_state <> op_idle then
    corrupt "attach: operation log is armed; use recover on a crash image";
  t.frag <- frag_bytes t;
  gauge t;
  t

(* Resolve the pending logged operation: allocations roll back (the
   caller cannot have durably published the block anywhere but the
   logged destination cell, which is cleared with it), frees roll
   forward (the intent was durably logged). Every branch is idempotent
   — recover can itself crash and be re-run. *)
let resolve_log t =
  let state = get64 t o_log_state in
  if state <> op_idle then begin
    let block = get64 t o_log_block in
    let dest = get64 t o_log_dest in
    (match state with
    | s when s = op_alloc_small || s = op_free_small ->
        let c = get64 t o_log_aux in
        if c < 0 || c >= nclasses then corrupt "recover: bad logged class %d" c;
        set64 t (block - 8) (sm_word c ~alloc:false);
        flush_range t (block - 8) 8
    | s when s = op_alloc_large || s = op_free_large ->
        if get_tag t block = tag_large then begin
          set_tag t block tag_free;
          flush_range t (block + 8) 8
        end
    | s -> corrupt "recover: bad log state %d" s);
    if dest <> 0 then begin
      set64 t dest 0;
      flush_range t dest 8
    end;
    fence t;
    log_disarm t
  end

let recover ~mem ~timing ~metrics ~lo:(lo : Vaddr.t) ~hi:(hi : Vaddr.t) =
  let lo = (lo :> int) and hi = (hi :> int) in
  check_range ~lo ~hi;
  let t = make ~mem ~timing ~metrics ~lo ~hi in
  validate_super t "recover";
  resolve_log t;
  (* Rebuild every free list from the physical tiling. The links and
     heads written here are volatile (a later crash re-runs this
     sweep); adjacent free large blocks are re-merged by growing the
     first header over its neighbours — any partial durability of
     those plain stores is again a consistent tiling. *)
  let class_frees = Array.make nclasses [] in
  let larges = ref [] in
  let blocks = ref 0 in
  let hi_off = data_hi t in
  let b = ref data_lo in
  while !b < hi_off do
    validate_block t !b "recover";
    let size = get_size t !b in
    let tag = get_tag t !b in
    incr blocks;
    (if tag = tag_free then begin
       match !larges with
       | prev :: rest when prev + get_size t prev = !b ->
           (* merge the run in place *)
           set_size t prev (get_size t prev + size);
           larges := prev :: rest
       | _ -> larges := !b :: !larges
     end
     else if tag = tag_large then ()
     else if is_slab_tag tag then begin
       let c = slab_class tag in
       if c >= nclasses then corrupt "recover: bad slab class %d at 0x%x" c !b;
       let cs = class_sizes.(c) in
       let stride = 8 + cs in
       let count = (size - header_bytes) / stride in
       for i = count - 1 downto 0 do
         let w_off = !b + header_bytes + (i * stride) in
         let w = get64 t w_off in
         if not (sm_is w) || sm_class w <> c then
           corrupt "recover: bad state word 0x%x at 0x%x" w w_off;
         if not (sm_alloc w) then
           class_frees.(c) <- (w_off + 8) :: class_frees.(c);
         incr blocks
       done
     end
     else corrupt "recover: bad tag 0x%x at 0x%x" tag !b);
    b := !b + size
  done;
  if !b <> hi_off then
    corrupt "recover: heap walk ended at 0x%x, expected 0x%x" !b hi_off;
  (* Chain the collected sets, ascending by address. *)
  let frag = ref 0 in
  for c = 0 to nclasses - 1 do
    let rec chain next = function
      | [] -> set_head t c next
      | p :: rest ->
          set64 t p next;
          frag := !frag + class_sizes.(c);
          chain p rest
    in
    (* class_frees is descending, so fold from the back builds an
       ascending list. *)
    chain 0 (List.rev class_frees.(c))
  done;
  let rec chain_large next = function
    | [] -> set_large t next
    | b :: rest ->
        set_link t b next;
        chain_large b rest
  in
  chain_large 0 !larges;
  t.frag <- !frag;
  t.c_recovered := !(t.c_recovered) + !blocks;
  gauge t;
  t

(* {1 Invariant check} *)

let check t =
  validate_super t "check";
  if get64 t o_log_state <> op_idle then
    corrupt "check: operation log is armed";
  (* Physical sweep: collect the free sets and verify the tiling (walk
     itself validates headers, state words and slab classes). *)
  let phys_small = Array.make nclasses [] in
  let phys_large = ref [] in
  let allocated = Hashtbl.create 64 in
  let prev_free_large = ref false in
  walk t (fun ~off ~size:_ ~free ~small ->
      if small then begin
        prev_free_large := false;
        let w = get64 t (off - 8) in
        if free then
          phys_small.(sm_class w) <- off :: phys_small.(sm_class w)
        else Hashtbl.replace allocated off ()
      end
      else if free then begin
        if !prev_free_large then
          corrupt "check: adjacent free large blocks at 0x%x" (off - header_bytes);
        prev_free_large := true;
        phys_large := (off - header_bytes) :: !phys_large
      end
      else begin
        prev_free_large := false;
        Hashtbl.replace allocated off ()
      end);
  let phys_large = List.rev !phys_large in
  (* List sweeps: acyclic, matching the physical sets exactly. *)
  let budget = heap_size t in
  for c = 0 to nclasses - 1 do
    let rec go cur acc steps =
      if cur = 0 then List.rev acc
      else if steps > budget then corrupt "check: class %d list cycle" c
      else begin
        let w = get64 t (cur - 8) in
        if not (sm_is w) || sm_class w <> c || sm_alloc w then
          corrupt "check: class %d list holds bad block 0x%x" c cur;
        go (get64 t cur) (cur :: acc) (steps + 1)
      end
    in
    let listed = go (get_head t c) [] 0 in
    if List.sort compare listed <> List.sort compare phys_small.(c) then
      corrupt "check: class %d list (%d entries) disagrees with the sweep (%d)"
        c (List.length listed)
        (List.length phys_small.(c))
  done;
  let rec go_large cur acc steps =
    if cur = 0 then List.rev acc
    else if steps > budget then corrupt "check: large list cycle"
    else begin
      validate_block t cur "check";
      if get_tag t cur <> tag_free then
        corrupt "check: large list holds non-free block 0x%x" cur;
      (match acc with
      | prev :: _ when prev >= cur -> corrupt "check: large list not sorted"
      | _ -> ());
      go_large (get_link t cur) (cur :: acc) (steps + 1)
    end
  in
  let listed_large = go_large (get_large t) [] 0 in
  if listed_large <> phys_large then
    corrupt "check: large list (%d entries) disagrees with the sweep (%d)"
      (List.length listed_large) (List.length phys_large);
  (* Root cells reference allocated payloads only. *)
  for i = 0 to roots - 1 do
    let p = get64 t (root_cell i) in
    if p <> 0 && not (Hashtbl.mem allocated p) then
      corrupt "check: root %d references 0x%x, which is not an allocated block"
        i p
  done
